package core

import (
	"testing"

	"vrcg/internal/vec"
	"vrcg/sparse"
)

func TestIteratorSolves(t *testing.T) {
	a := sparse.Poisson2D(8)
	n := a.Dim()
	xTrue := vec.New(n)
	vec.Random(xTrue, 71)
	b := vec.New(n)
	a.MulVec(b, xTrue)

	it, err := NewIterator(a, b, Options{K: 2, Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10*n; i++ {
		more, err := it.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !more {
			break
		}
	}
	if !it.Converged() {
		t.Fatalf("iterator did not converge in %d steps (res %g)", it.Iteration(), it.ResidualNorm())
	}
	if it.TrueResidualNorm() > 1e-6*vec.Norm2(b) {
		t.Fatalf("true residual %g", it.TrueResidualNorm())
	}
	if !vec.EqualTol(it.X(), xTrue, 1e-5) {
		t.Fatal("iterator solution wrong")
	}
}

func TestIteratorMatchesSolve(t *testing.T) {
	a := sparse.Poisson2D(6)
	b := vec.New(a.Dim())
	vec.Random(b, 72)
	solved, err := Solve(a, b, Options{K: 2, Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	it, err := NewIterator(a, b, Options{K: 2, Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	for {
		more, err := it.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !more {
			break
		}
	}
	if it.Iteration() != solved.Iterations {
		t.Fatalf("iterator took %d steps, Solve took %d", it.Iteration(), solved.Iterations)
	}
	if !vec.EqualTol(it.X(), solved.X, 1e-10) {
		t.Fatal("iterator and Solve disagree")
	}
}

func TestIteratorStepAfterConvergenceIsNoop(t *testing.T) {
	a := sparse.Poisson1D(8)
	b := vec.New(8) // zero rhs: converged at construction
	it, err := NewIterator(a, b, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !it.Converged() {
		t.Fatal("zero rhs should converge immediately")
	}
	more, err := it.Step()
	if err != nil || more {
		t.Fatalf("post-convergence Step: more=%v err=%v", more, err)
	}
	if it.Iteration() != 0 {
		t.Fatal("no-op step advanced the counter")
	}
}

func TestIteratorEarlyInspection(t *testing.T) {
	// The point of the stepper: a caller can watch the residual and
	// change its mind mid-solve.
	a := sparse.Poisson2D(8)
	b := vec.New(a.Dim())
	vec.Random(b, 73)
	it, err := NewIterator(a, b, Options{K: 1, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	start := it.ResidualNorm()
	for i := 0; i < 5; i++ {
		if _, err := it.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if it.Iteration() != 5 {
		t.Fatalf("iteration counter %d, want 5", it.Iteration())
	}
	if it.ResidualNorm() >= start {
		t.Fatal("no residual progress in 5 steps")
	}
	if it.Stats().MatVecs == 0 {
		t.Fatal("stats not accumulating")
	}
}

func TestIteratorBadArguments(t *testing.T) {
	a := sparse.Poisson1D(5)
	if _, err := NewIterator(a, vec.New(6), Options{K: 1}); err == nil {
		t.Fatal("expected dimension error")
	}
	if _, err := NewIterator(a, vec.New(5), Options{K: -2}); err == nil {
		t.Fatal("expected K error")
	}
	if _, err := NewIterator(a, vec.New(5), Options{K: 1, X0: vec.New(2)}); err == nil {
		t.Fatal("expected x0 error")
	}
}

func TestIteratorIndefinite(t *testing.T) {
	a := sparse.DiagonalMatrix(vec.NewFrom([]float64{1, -1}))
	it, err := NewIterator(a, vec.NewFrom([]float64{1, 1}), Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	var stepErr error
	for i := 0; i < 50 && stepErr == nil; i++ {
		var more bool
		more, stepErr = it.Step()
		if !more && stepErr == nil {
			break
		}
	}
	if stepErr == nil && it.Converged() {
		t.Fatal("indefinite system should not converge cleanly")
	}
}
