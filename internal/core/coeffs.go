package core

import "fmt"

// CoeffPair represents a vector symbolically as a polynomial combination
// of the Krylov base at some anchor iteration m:
//
//	v = sum_i Rho[i] A^i r(m)  +  sum_i Pi[i] A^i p(m)
//
// This is the representation behind the paper's equation (*): applying
// the CG recurrences to CoeffPairs instead of vectors produces, after k
// steps, exactly the coefficients a_i, b_i, c_i of (*) — polynomials in
// the step parameters {a_{n-1}..a_{n-k}, lambda_{n-1}..lambda_{n-k}}.
// The package uses it to validate the sliding-window engine and to
// demonstrate claim C3 constructively.
type CoeffPair struct {
	Rho []float64 // coefficients of A^i r(m)
	Pi  []float64 // coefficients of A^i p(m)
}

// NewCoeffR returns the representation of r(m) itself: Rho = [1].
func NewCoeffR() CoeffPair { return CoeffPair{Rho: []float64{1}, Pi: nil} }

// NewCoeffP returns the representation of p(m) itself: Pi = [1].
func NewCoeffP() CoeffPair { return CoeffPair{Rho: nil, Pi: []float64{1}} }

// Clone returns an independent copy.
func (c CoeffPair) Clone() CoeffPair {
	out := CoeffPair{
		Rho: make([]float64, len(c.Rho)),
		Pi:  make([]float64, len(c.Pi)),
	}
	copy(out.Rho, c.Rho)
	copy(out.Pi, c.Pi)
	return out
}

// Degree returns the highest power of A appearing with any coefficient
// slot (structural degree; trailing zeros still count as allocated).
func (c CoeffPair) Degree() int {
	d := len(c.Rho) - 1
	if e := len(c.Pi) - 1; e > d {
		d = e
	}
	if d < 0 {
		d = 0
	}
	return d
}

// shiftA returns the representation of A*v: every power index rises by one.
func (c CoeffPair) shiftA() CoeffPair {
	out := CoeffPair{}
	if len(c.Rho) > 0 {
		out.Rho = append([]float64{0}, c.Rho...)
	}
	if len(c.Pi) > 0 {
		out.Pi = append([]float64{0}, c.Pi...)
	}
	return out
}

// axpyCoeff returns x + s*y on coefficient vectors.
func axpyCoeff(x, y []float64, s float64) []float64 {
	n := len(x)
	if len(y) > n {
		n = len(y)
	}
	out := make([]float64, n)
	copy(out, x)
	for i := range y {
		out[i] += s * y[i]
	}
	return out
}

// AddScaled returns c + s*other.
func (c CoeffPair) AddScaled(s float64, other CoeffPair) CoeffPair {
	return CoeffPair{
		Rho: axpyCoeff(c.Rho, other.Rho, s),
		Pi:  axpyCoeff(c.Pi, other.Pi, s),
	}
}

// StepCGR advances the residual representation alone: r' = r - λ A p.
// Splitting the step lets callers evaluate (r', r') — and hence alpha —
// before committing the direction update, mirroring Families.StepR.
func StepCGR(r, p CoeffPair, lambda float64) CoeffPair {
	return r.AddScaled(-lambda, p.shiftA())
}

// StepCGP completes the step: p' = r' + a p.
func StepCGP(rNew, p CoeffPair, alpha float64) CoeffPair {
	return rNew.AddScaled(alpha, p)
}

// StepCG advances the pair of representations (r, p) by one CG iteration
// with scalars lambda (λ_n) and alpha (a_{n+1}):
//
//	r' = r - λ A p,   p' = r' + a p
//
// returning the new pair. Degrees grow by one per step, so after k steps
// the representations span powers 0..k — the base set the paper's
// look-ahead uses.
func StepCG(r, p CoeffPair, lambda, alpha float64) (rNew, pNew CoeffPair) {
	rNew = StepCGR(r, p, lambda)
	pNew = StepCGP(rNew, p, alpha)
	return rNew, pNew
}

// BaseGram holds the inner products among the base Krylov vectors the
// paper's equation (*) contracts against:
//
//	Mu[i]    = (r(m), A^i r(m))
//	Nu[i]    = (r(m), A^i p(m))
//	Omega[i] = (p(m), A^i p(m))
//
// Slices must extend far enough for the contraction being performed:
// index i+j(+shift) for all coefficient degrees i, j in play.
type BaseGram struct {
	Mu, Nu, Omega []float64
}

// Contract evaluates (x, A^shift y) for vectors represented by x and y
// over the base Gram sequences, using symmetry (A^a u, A^b v) = (u, A^{a+b} v):
//
//	(x, A^s y) = sum_{ij} xR_i yR_j Mu[i+j+s]
//	           + sum_{ij} (xR_i yP_j + xP_i yR_j) Nu[i+j+s]
//	           + sum_{ij} xP_i yP_j Omega[i+j+s]
//
// This is precisely the paper's equation (*) once x = y = r(n) (s=0) or
// x = y = p(n) (s=1). Contract panics if the Gram sequences are too short.
func (g BaseGram) Contract(x, y CoeffPair, shift int) float64 {
	need := x.Degree() + y.Degree() + shift
	if len(g.Mu) <= need && hasAny(x.Rho) && hasAny(y.Rho) {
		panic(fmt.Sprintf("core: Mu length %d insufficient for index %d", len(g.Mu), need))
	}
	if len(g.Omega) <= need && hasAny(x.Pi) && hasAny(y.Pi) {
		panic(fmt.Sprintf("core: Omega length %d insufficient for index %d", len(g.Omega), need))
	}
	var s float64
	for i, xi := range x.Rho {
		if xi == 0 {
			continue
		}
		for j, yj := range y.Rho {
			if yj != 0 {
				s += xi * yj * g.Mu[i+j+shift]
			}
		}
		for j, yj := range y.Pi {
			if yj != 0 {
				s += xi * yj * g.Nu[i+j+shift]
			}
		}
	}
	for i, xi := range x.Pi {
		if xi == 0 {
			continue
		}
		for j, yj := range y.Rho {
			if yj != 0 {
				s += xi * yj * g.Nu[i+j+shift]
			}
		}
		for j, yj := range y.Pi {
			if yj != 0 {
				s += xi * yj * g.Omega[i+j+shift]
			}
		}
	}
	return s
}

func hasAny(c []float64) bool {
	for _, v := range c {
		if v != 0 {
			return true
		}
	}
	return false
}

// StarCoefficients expands equation (*) symbolically for the r(n) inner
// product after k steps with the given parameter history: it returns the
// coefficient arrays (aCoef, bCoef, cCoef) such that
//
//	(r(n), r(n)) = sum_i aCoef[i] (r, A^i r)
//	             + sum_i bCoef[i] (r, A^i p)
//	             + sum_i cCoef[i] (p, A^i p)
//
// with r = r(n-k), p = p(n-k). lambdas[j] and alphas[j] are λ_{m+j} and
// a_{m+j+1} for j = 0..k-1 where m = n-k. The arrays have length 2k+1,
// realizing the paper's claim that such coefficients exist and are
// polynomials in the parameters.
func StarCoefficients(lambdas, alphas []float64) (aCoef, bCoef, cCoef []float64) {
	if len(lambdas) != len(alphas) {
		panic("core: lambdas and alphas must have equal length")
	}
	k := len(lambdas)
	r := NewCoeffR()
	p := NewCoeffP()
	for j := 0; j < k; j++ {
		r, p = StepCG(r, p, lambdas[j], alphas[j])
	}
	aCoef = make([]float64, 2*k+1)
	bCoef = make([]float64, 2*k+1)
	cCoef = make([]float64, 2*k+1)
	// (r(n), r(n)) = sum_{ij} rho_i rho_j Mu_{i+j} + 2 rho_i pi_j Nu_{i+j}
	//              + pi_i pi_j Omega_{i+j}
	for i, ri := range r.Rho {
		for j, rj := range r.Rho {
			aCoef[i+j] += ri * rj
		}
		for j, pj := range r.Pi {
			bCoef[i+j] += 2 * ri * pj
		}
	}
	for i, pi := range r.Pi {
		for j, pj := range r.Pi {
			cCoef[i+j] += pi * pj
		}
	}
	return aCoef, bCoef, cCoef
}
