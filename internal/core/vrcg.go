package core

import (
	"fmt"
	"math"

	"vrcg/internal/krylov"
	"vrcg/internal/vec"
	"vrcg/sparse"
)

// Options configures a VRCG solve.
type Options struct {
	// K is the look-ahead parameter (paper §5); it must be >= 0. K = 0
	// keeps only the one-step §3 recurrence; K = 1 is the "doubling"
	// configuration of §3; the paper's headline setting is K = log2(N).
	K int
	// MaxIter bounds the iteration count; 0 means 10*n.
	MaxIter int
	// Tol is the relative residual tolerance ||r|| <= Tol*||b||; 0 means 1e-10.
	Tol float64
	// X0 is the initial guess; nil means the zero vector.
	X0 vec.Vector
	// RecordHistory enables Result.History.
	RecordHistory bool
	// ReanchorEvery, when > 0, recomputes the scalar windows directly
	// from the vector families every that many iterations. This is the
	// stabilization successor methods later formalized; the recurrence
	// scalars suffer catastrophic cancellation as the residual collapses
	// (the instability that motivated Chronopoulos–Gear and
	// Ghysels–Vanroose), and re-anchoring bounds the drift. 0 selects
	// the default interval DefaultReanchorEvery; a negative value
	// disables re-anchoring entirely (the paper's pure exact-arithmetic
	// algorithm, useful for the stability experiments).
	ReanchorEvery int
	// WindowOnlyReanchor restricts periodic re-anchoring to the scalar
	// windows, skipping the 2k+1 matrix–vector products that rebuild the
	// Krylov vector families. This is the paper-pure cost profile (one
	// matvec per iteration, exactly), but the vector families then
	// accumulate their own drift: P[i] slowly stops being A^i p. The
	// default (false) refreshes families at each re-anchor, which is
	// what makes the method robust in floating point.
	WindowOnlyReanchor bool
	// ValidateEvery, when > 0, computes direct inner products every that
	// many iterations purely for drift diagnostics (Result.Drift). The
	// extra products are tallied in Result.ValidationDots, not in
	// Stats.InnerProducts, so operation-count experiments stay clean.
	ValidateEvery int
	// ResidualReplaceEvery, when > 0, replaces the recursive residual
	// with the true residual b - A x every that many iterations (one
	// extra matvec each time) and re-anchors from it. This is the
	// residual-replacement stabilization (van der Vorst & Ye) that the
	// paper's successors adopted; it ties the attainable accuracy to the
	// true residual instead of the drifting recursive one. 0 disables.
	ResidualReplaceEvery int
	// Callback, when non-nil, is invoked after each iteration; returning
	// false stops the solve early.
	Callback func(iter int, resNorm float64) bool
	// Pool, when non-nil, routes the solver's hot-path kernels — the
	// matrix–vector product, the family axpys, and the direct inner
	// products — through the shared worker-pool execution engine
	// (vec.Pool + sparse.CSR.MulVecPool). Nil keeps the serial kernels.
	Pool *vec.Pool
}

// DefaultReanchorInterval returns the re-anchoring interval used when
// Options.ReanchorEvery is zero. Drift grows with the look-ahead k (the
// windows span matrix powers up to 2k+3, so cancellation amplifies
// faster), hence the interval shrinks as k grows: 8 for k=0 down to a
// floor of 2.
func DefaultReanchorInterval(k int) int {
	v := (8 + k) / (k + 1) // ceil(8/(k+1))
	if v < 2 {
		v = 2
	}
	return v
}

// DriftStats records how far the recurrence-produced scalars wandered
// from directly computed inner products (measured only at ValidateEvery
// checkpoints).
type DriftStats struct {
	// MaxRelRR is the maximum relative error of the recurrence (r,r).
	MaxRelRR float64
	// MaxRelPAP is the maximum relative error of the recurrence (p,Ap).
	MaxRelPAP float64
	// Checks is the number of drift checkpoints taken.
	Checks int
}

// Result reports a VRCG solve. It embeds the common iterative-solver
// result and adds recurrence-specific diagnostics.
type Result struct {
	krylov.Result
	// K echoes the look-ahead parameter used.
	K int
	// Reanchors counts direct window recomputations.
	Reanchors int
	// Refreshes counts family rebuilds (2k+1 matvecs each), whether
	// periodic or emergency.
	Refreshes int
	// Replacements counts residual replacements (true-residual rebuilds).
	Replacements int
	// ValidationDots counts diagnostic-only inner products.
	ValidationDots int
	// Drift holds scalar drift diagnostics (see Options.ValidateEvery).
	Drift DriftStats
	// FallbackDots counts direct (r,r) evaluations forced by a
	// non-positive recurrence value (a drift symptom near convergence).
	FallbackDots int
}

// Solve runs the restructured conjugate gradient iteration of the paper
// with look-ahead parameter o.K: identical iterates to standard CG in
// exact arithmetic, but with every (r,r) and (p,Ap) delivered by the §4/§5
// scalar recurrences from inner products computed k iterations earlier,
// one matrix–vector product per iteration, and three direct inner
// products per iteration replenishing the window tops.
func Solve(a sparse.Matrix, b vec.Vector, o Options) (*Result, error) {
	if a.Dim() != len(b) {
		return nil, fmt.Errorf("core: matrix order %d but rhs length %d: %w", a.Dim(), len(b), sparse.ErrDim)
	}
	if o.X0 != nil && len(o.X0) != a.Dim() {
		return nil, fmt.Errorf("core: x0 length %d for order %d: %w", len(o.X0), a.Dim(), sparse.ErrDim)
	}
	if o.K < 0 {
		return nil, fmt.Errorf("core: look-ahead parameter K = %d must be >= 0: %w", o.K, krylov.ErrBadOption)
	}
	n := a.Dim()
	if o.MaxIter == 0 {
		o.MaxIter = 10 * n
	}
	if o.Tol == 0 {
		o.Tol = 1e-10
	}
	k := o.K
	if o.ReanchorEvery == 0 {
		o.ReanchorEvery = DefaultReanchorInterval(k)
	}

	res := &Result{K: k}
	if o.X0 != nil {
		res.X = vec.Clone(o.X0)
	} else {
		res.X = vec.New(n)
	}

	// r(0) = b - A x(0).
	r0 := vec.New(n)
	sparse.PooledMulVec(a, o.Pool, r0, res.X)
	vec.Sub(r0, b, r0)
	res.Stats.MatVecs++
	res.Stats.Flops += matvecFlops(a)

	bnorm := vec.Norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}
	threshold := o.Tol * bnorm

	// Start-up (paper: "After an initial start up"): build the Krylov
	// vector families (k+2 matvecs including the P top) and the scalar
	// windows (6k+6 direct inner products).
	fam := NewFamiliesPool(a, r0, k, o.Pool)
	res.Stats.MatVecs += k + 1
	res.Stats.Flops += int64(k+1) * matvecFlops(a)
	win := NewWindow(k)
	win.SetPool(o.Pool)
	win.InitDirect(fam.R, fam.P)
	nDots := (2*k + 1) + (2*k + 2) + (2*k + 3)
	res.Stats.InnerProducts += nDots
	res.Stats.Flops += int64(nDots) * 2 * int64(n)

	rr := win.RR()
	record := func(v float64) {
		if o.RecordHistory {
			res.History = append(res.History, v)
		}
	}
	resNorm := func() float64 { return math.Sqrt(math.Max(rr, 0)) }
	record(resNorm())

	for res.Iterations < o.MaxIter {
		if resNorm() <= threshold {
			// The recurrence value may have drifted; verify with one
			// direct inner product before declaring convergence, and
			// resynchronize the window if the check fails.
			rrDirect := pdot(o.Pool, fam.Residual(), fam.Residual())
			res.FallbackDots++
			res.Stats.InnerProducts++
			res.Stats.Flops += 2 * int64(n)
			win.M[0] = rrDirect
			rr = rrDirect
			if resNorm() <= threshold {
				res.Converged = true
				break
			}
		}
		pap := win.PAP()
		if pap <= 0 || math.IsNaN(pap) {
			// Drift symptom: fall back to the direct inner product
			// (A p is family member P[1], so this is one dot).
			pap = pdot(o.Pool, fam.Direction(), fam.AP())
			res.FallbackDots++
			res.Stats.InnerProducts++
			res.Stats.Flops += 2 * int64(n)
			win.W[1] = pap
		}
		if pap <= 0 || math.IsNaN(pap) {
			// The direct product failed too, meaning the vector families
			// themselves drifted (P[1] is no longer A p). Emergency
			// recovery: rebuild the families from the live r and p and
			// re-anchor the windows. Only if the genuinely recomputed
			// (p, A p) is still non-positive is the operator indefinite.
			reanchor(a, res, fam, win, true)
			rr = win.RR()
			pap = win.PAP()
			if pap <= 0 || math.IsNaN(pap) {
				return res, fmt.Errorf("core: (p,Ap) = %g at iteration %d: %w",
					pap, res.Iterations, krylov.ErrIndefinite)
			}
		}
		lambda := rr / pap

		// Iterate update (uses the live direction P[0] before StepP).
		paxpy(o.Pool, lambda, fam.Direction(), res.X)
		res.Stats.VectorUpdates++
		res.Stats.Flops += 2 * int64(n)

		// Residual-family half step, then the recurrence value of (r',r').
		fam.StepR(lambda)
		res.Stats.VectorUpdates += k + 1
		res.Stats.Flops += int64(k+1) * 2 * int64(n)

		rrNew := win.PeekRR(lambda)
		fellBack := false
		if rrNew <= 0 || math.IsNaN(rrNew) {
			// Drift pushed the recurrence nonpositive (typically at
			// convergence); fall back to one direct inner product.
			rrNew = pdot(o.Pool, fam.Residual(), fam.Residual())
			fellBack = true
			res.FallbackDots++
			res.Stats.InnerProducts++
			res.Stats.Flops += 2 * int64(n)
		}
		if rr == 0 {
			return res, fmt.Errorf("core: (r,r) vanished at iteration %d: %w", res.Iterations, krylov.ErrBreakdown)
		}
		alpha := rrNew / rr

		// Direction-family half step: 2k+2 axpys + the single matvec.
		fam.StepP(a, alpha)
		res.Stats.VectorUpdates += k + 1
		res.Stats.Flops += int64(k+1) * 2 * int64(n)
		res.Stats.MatVecs++
		res.Stats.Flops += matvecFlops(a)

		// Window advance: all-but-top entries by scalar recurrence, tops
		// by the three direct inner products of §5.
		topN, topW1, topW2 := fam.DirectTops()
		res.Stats.InnerProducts += 3
		res.Stats.Flops += 3 * 2 * int64(n)
		win.Step(lambda, alpha, topN, topW1, topW2)
		res.Stats.Flops += int64(6*(2*k+1) + 4) // scalar recurrence work
		if fellBack {
			win.M[0] = rrNew // resynchronize with the direct value
		}

		rr = win.RR()
		res.Iterations++

		if o.ValidateEvery > 0 && res.Iterations%o.ValidateEvery == 0 {
			validateDrift(res, fam, rr, win.PAP())
		}
		if o.ResidualReplaceEvery > 0 && res.Iterations%o.ResidualReplaceEvery == 0 {
			// Residual replacement: overwrite the recursive residual
			// with b - A x, then rebuild everything from it.
			sparse.PooledMulVec(a, o.Pool, fam.R[0], res.X)
			vec.Sub(fam.R[0], b, fam.R[0])
			res.Stats.MatVecs++
			res.Stats.Flops += matvecFlops(a)
			// The direction keeps its recursive value (replacing p too
			// would discard conjugacy); powers and windows rebuild.
			reanchor(a, res, fam, win, true)
			res.Replacements++
			rr = win.RR()
		} else if o.ReanchorEvery > 0 && res.Iterations%o.ReanchorEvery == 0 {
			reanchor(a, res, fam, win, !o.WindowOnlyReanchor)
			rr = win.RR()
		}

		record(resNorm())
		if o.Callback != nil && !o.Callback(res.Iterations, resNorm()) {
			break
		}
	}
	if !res.Converged && resNorm() <= threshold {
		// Loop exited via MaxIter or callback with a small recurrence
		// value; trust only a direct evaluation.
		rr = pdot(o.Pool, fam.Residual(), fam.Residual())
		res.FallbackDots++
		res.Stats.InnerProducts++
		res.Stats.Flops += 2 * int64(n)
		if resNorm() <= threshold {
			res.Converged = true
		}
	}
	res.ResidualNorm = resNorm()

	// True residual at exit.
	tr := vec.New(n)
	sparse.PooledMulVec(a, o.Pool, tr, res.X)
	vec.Sub(tr, b, tr)
	res.Stats.MatVecs++
	res.Stats.Flops += matvecFlops(a)
	res.TrueResidualNorm = vec.Norm2(tr)
	return res, nil
}

func validateDrift(res *Result, fam *Families, rrRec, papRec float64) {
	rrDir := vec.Dot(fam.Residual(), fam.Residual())
	papDir := vec.Dot(fam.Direction(), fam.AP())
	res.ValidationDots += 2
	res.Drift.Checks++
	if d := relErr(rrRec, rrDir); d > res.Drift.MaxRelRR {
		res.Drift.MaxRelRR = d
	}
	if d := relErr(papRec, papDir); d > res.Drift.MaxRelPAP {
		res.Drift.MaxRelPAP = d
	}
}

func relErr(got, want float64) float64 {
	den := math.Abs(want)
	if den < 1e-300 {
		den = 1e-300
	}
	return math.Abs(got-want) / den
}

func reanchor(a sparse.Matrix, res *Result, fam *Families, win *Window, refresh bool) {
	n := a.Dim()
	k := fam.K
	if refresh {
		for i := 1; i <= k; i++ {
			sparse.PooledMulVec(a, fam.pool, fam.R[i], fam.R[i-1])
		}
		for i := 1; i <= k+1; i++ {
			sparse.PooledMulVec(a, fam.pool, fam.P[i], fam.P[i-1])
		}
		res.Stats.MatVecs += 2*k + 1
		res.Stats.Flops += int64(2*k+1) * matvecFlops(a)
		res.Refreshes++
	}
	win.InitDirect(fam.R, fam.P)
	nDots := (2*k + 1) + (2*k + 2) + (2*k + 3)
	res.Stats.InnerProducts += nDots
	res.Stats.Flops += int64(nDots) * 2 * int64(n)
	res.Reanchors++
}

func matvecFlops(a sparse.Matrix) int64 {
	if sp, ok := a.(sparse.Sparse); ok {
		return 2 * int64(sp.NNZ())
	}
	n := int64(a.Dim())
	return 2 * n * n
}
