package core

import (
	"fmt"
	"math"

	"vrcg/internal/engine"
	"vrcg/internal/vec"
	"vrcg/sparse"
)

// Error sentinels shared with the rest of the solver family.
var (
	ErrIndefinite = engine.ErrIndefinite
	ErrBreakdown  = engine.ErrBreakdown
	ErrBadOption  = engine.ErrBadOption
)

// Options configures a VRCG solve. It is the engine's shared Config:
// the fields this package consumes are K (the §5 look-ahead parameter;
// K = 0 keeps only the one-step §3 recurrence, K = 1 is the "doubling"
// configuration, the paper's headline setting is K = log2(N)),
// ReanchorEvery / WindowOnlyReanchor (periodic direct window
// recomputation — the stabilization successor methods later formalized;
// 0 selects DefaultReanchorInterval(K), negative disables),
// ValidateEvery (diagnostic-only drift checkpoints into Result.Drift),
// ResidualReplaceEvery (van der Vorst–Ye residual replacement), plus
// the common Tol/MaxIter/X0/RecordHistory/Callback/Pool.
type Options = engine.Config

// DriftStats records how far the recurrence-produced scalars wandered
// from directly computed inner products (measured only at ValidateEvery
// checkpoints).
type DriftStats = engine.DriftStats

// Result reports a VRCG solve: the canonical engine result, whose
// K/Reanchors/Refreshes/Replacements/ValidationDots/FallbackDots/Drift
// fields carry the recurrence-specific diagnostics.
type Result = engine.Result

// DefaultReanchorInterval returns the re-anchoring interval used when
// Options.ReanchorEvery is zero. Drift grows with the look-ahead k (the
// windows span matrix powers up to 2k+3, so cancellation amplifies
// faster), hence the interval shrinks as k grows: 8 for k=0 down to a
// floor of 2.
func DefaultReanchorInterval(k int) int {
	v := (8 + k) / (k + 1) // ceil(8/(k+1))
	if v < 2 {
		v = 2
	}
	return v
}

// Solve runs the restructured conjugate gradient iteration of the paper
// with look-ahead parameter o.K: identical iterates to standard CG in
// exact arithmetic, but with every (r,r) and (p,Ap) delivered by the §4/§5
// scalar recurrences from inner products computed k iterations earlier,
// one matrix–vector product per iteration, and three direct inner
// products per iteration replenishing the window tops. See vrcgKernel
// for the mechanics; the engine driver owns the loop.
func Solve(a sparse.Matrix, b vec.Vector, o Options) (*Result, error) {
	if a.Dim() <= 0 {
		return nil, fmt.Errorf("core: operator order %d must be positive: %w", a.Dim(), sparse.ErrDim)
	}
	res := new(Result)
	err := engine.Solve(NewKernel(), engine.NewWorkspace(a.Dim(), o.Pool), a, b, o, res)
	return res, err
}

func validateDrift(res *Result, fam *Families, rrRec, papRec float64) {
	rrDir := vec.Dot(fam.Residual(), fam.Residual())
	papDir := vec.Dot(fam.Direction(), fam.AP())
	res.ValidationDots += 2
	res.Drift.Checks++
	if d := relErr(rrRec, rrDir); d > res.Drift.MaxRelRR {
		res.Drift.MaxRelRR = d
	}
	if d := relErr(papRec, papDir); d > res.Drift.MaxRelPAP {
		res.Drift.MaxRelPAP = d
	}
}

func relErr(got, want float64) float64 {
	den := math.Abs(want)
	if den < 1e-300 {
		den = 1e-300
	}
	return math.Abs(got-want) / den
}

func reanchor(a sparse.Matrix, res *Result, fam *Families, win *Window, refresh bool) {
	n := a.Dim()
	k := fam.K
	if refresh {
		for i := 1; i <= k; i++ {
			sparse.PooledMulVec(a, fam.pool, fam.R[i], fam.R[i-1])
		}
		for i := 1; i <= k+1; i++ {
			sparse.PooledMulVec(a, fam.pool, fam.P[i], fam.P[i-1])
		}
		res.Stats.MatVecs += 2*k + 1
		res.Stats.Flops += int64(2*k+1) * matvecFlops(a)
		res.Refreshes++
	}
	win.InitDirect(fam.R, fam.P)
	nDots := (2*k + 1) + (2*k + 2) + (2*k + 3)
	res.Stats.InnerProducts += nDots
	res.Stats.Flops += int64(nDots) * 2 * int64(n)
	res.Reanchors++
}

func matvecFlops(a sparse.Matrix) int64 {
	return engine.MatVecFlops(a)
}
