// Package core implements the paper's contribution: the algebraically
// restructured conjugate gradient iteration of Van Rosendale (1983) that
// minimizes inner-product data dependencies ("VRCG").
//
// The key objects are the three sliding inner-product families of §5:
//
//	M_i = (r(n), A^i r(n))    i = 0..2k
//	N_i = (r(n), A^i p(n))    i = 0..2k+1
//	W_i = (p(n), A^i p(n))    i = 0..2k+2
//
// together with the Krylov vector families R_i = A^i r(n) (i = 0..k) and
// P_i = A^i p(n) (i = 0..k+1). One CG step advances every family by
// scalar and axpy recurrences:
//
//	M'_i = M_i - 2λ N_{i+1} + λ² W_{i+2}                 (the paper's §3/§5 relation)
//	N'_i = M'_i + a (N_i - λ W_{i+1})
//	W'_i = M'_i + 2a (N_i - λ W_{i+1}) + a² W_i
//	R'_i = R_i - λ P_{i+1},  P'_i = R'_i + a P_i          (the paper's §5 vector relations)
//
// Only the top entries of each window lack a recurrence source and are
// computed directly from the vector families — three inner products per
// iteration (the paper asserts two using recurrence details it deferred
// to a future paper that never appeared; three is what the published
// relations support, and the distinction is immaterial to every
// complexity claim). One matrix–vector product per iteration maintains
// the top vector power, exactly as §5 requires.
//
// Because the scalars needed at iteration n (M_0 and W_1) were produced
// by inputs computed k iterations earlier, the length-N summation
// fan-ins can be pipelined across k iterations; with k = log N the
// per-iteration critical path is the O(log k) = O(log log N) scalar
// recurrence evaluation — the paper's headline claim.
package core

import (
	"fmt"

	"vrcg/internal/vec"
	"vrcg/sparse"
)

// pdot, paxpy and pxpay are package-local shorthands for the shared
// pool-or-serial dispatch helpers (vec.PoolDot and friends) — the
// engine seam of this package: every hot-path vector operation in the
// solver goes through one of them (or sparse.PooledMulVec).
func pdot(p *vec.Pool, x, y vec.Vector) float64 { return vec.PoolDot(p, x, y) }

func paxpy(p *vec.Pool, alpha float64, x, y vec.Vector) { vec.PoolAxpy(p, alpha, x, y) }

func pxpay(p *vec.Pool, x vec.Vector, alpha float64, y vec.Vector) { vec.PoolXpay(p, x, alpha, y) }

// Window holds the three sliding inner-product families for look-ahead
// parameter k. The slices are sized M: 2k+1, N: 2k+2, W: 2k+3 entries.
type Window struct {
	K int
	M []float64 // M[i] = (r, A^i r),   i = 0..2k
	N []float64 // N[i] = (r, A^i p),   i = 0..2k+1
	W []float64 // W[i] = (p, A^i p),   i = 0..2k+2

	// scratch slabs swapped with M/N/W by Step, so advancing the window
	// is allocation-free.
	m2, n2, w2 []float64

	pool *vec.Pool // used by InitDirect's inner products; nil = serial
}

// NewWindow allocates a zero window for look-ahead parameter k >= 0.
func NewWindow(k int) *Window {
	if k < 0 {
		panic("core: look-ahead parameter must be >= 0")
	}
	return &Window{
		K:  k,
		M:  make([]float64, 2*k+1),
		N:  make([]float64, 2*k+2),
		W:  make([]float64, 2*k+3),
		m2: make([]float64, 2*k+1),
		n2: make([]float64, 2*k+2),
		w2: make([]float64, 2*k+3),
	}
}

// SetPool routes InitDirect's inner products through the given worker
// pool (nil restores the serial kernels).
func (w *Window) SetPool(p *vec.Pool) { w.pool = p }

// RR returns (r, r), the scalar the paper's recurrence delivers for the
// current iteration.
func (w *Window) RR() float64 { return w.M[0] }

// PAP returns (p, A p).
func (w *Window) PAP() float64 { return w.W[1] }

// Clone returns an independent copy of the window.
func (w *Window) Clone() *Window {
	c := NewWindow(w.K)
	copy(c.M, w.M)
	copy(c.N, w.N)
	copy(c.W, w.W)
	return c
}

// Step advances the window by one CG iteration with step scalars lambda
// (the paper's λ_n) and alpha (the paper's a_{n+1}), consuming the three
// directly computed replacement entries for the window tops:
//
//	topN = (r', A^{2k+1} p'),  topW1 = (p', A^{2k+1} p'),  topW2 = (p', A^{2k+2} p').
//
// Every other entry follows from the recurrences. Step returns the new
// (r', r') so the caller can form the next alpha; note alpha must already
// be known to call Step, so the caller first computes the M update alone
// via PeekRR.
func (w *Window) Step(lambda, alpha, topN, topW1, topW2 float64) {
	k := w.K
	nM, nN, nW := w.m2, w.n2, w.w2
	for i := 0; i <= 2*k; i++ {
		nM[i] = w.M[i] - 2*lambda*w.N[i+1] + lambda*lambda*w.W[i+2]
	}
	for i := 0; i <= 2*k; i++ {
		t := w.N[i] - lambda*w.W[i+1]
		nN[i] = nM[i] + alpha*t
		nW[i] = nM[i] + 2*alpha*t + alpha*alpha*w.W[i]
	}
	nN[2*k+1] = topN
	nW[2*k+1] = topW1
	nW[2*k+2] = topW2
	w.M, w.N, w.W, w.m2, w.n2, w.w2 = nM, nN, nW, w.M, w.N, w.W
}

// PeekRR returns what (r', r') will be after a step with the given
// lambda, using only the recurrence — this is the quantity the paper
// shows in §3:
//
//	(r', r') = (r, r) - 2λ (r, A p) + λ² (p, A² p).
func (w *Window) PeekRR(lambda float64) float64 {
	return w.M[0] - 2*lambda*w.N[1] + lambda*lambda*w.W[2]
}

// InitDirect fills the window with directly computed inner products from
// the Krylov vector families rPow[i] = A^i r (i = 0..k) and
// pPow[i] = A^i p (i = 0..k+1), using symmetry (A^a x, A^b y) = (x, A^{a+b} y).
func (w *Window) InitDirect(rPow, pPow []vec.Vector) {
	k := w.K
	if len(rPow) != k+1 || len(pPow) != k+2 {
		panic(fmt.Sprintf("core: InitDirect needs %d r-powers and %d p-powers, got %d and %d",
			k+1, k+2, len(rPow), len(pPow)))
	}
	// M_i = (r, A^i r): split i = a + b with a, b <= k.
	for i := 0; i <= 2*k; i++ {
		a := i / 2
		b := i - a
		w.M[i] = pdot(w.pool, rPow[a], rPow[b])
	}
	// N_i = (r, A^i p): a <= k (r side), b <= k+1.
	for i := 0; i <= 2*k+1; i++ {
		a := i / 2
		if a > k {
			a = k
		}
		b := i - a
		w.N[i] = pdot(w.pool, rPow[a], pPow[b])
	}
	// W_i = (p, A^i p): a, b <= k+1.
	for i := 0; i <= 2*k+2; i++ {
		a := i / 2
		b := i - a
		w.W[i] = pdot(w.pool, pPow[a], pPow[b])
	}
}

// Families holds the Krylov vector families of §5: R[i] = A^i r for
// i = 0..k and P[i] = A^i p for i = 0..k+1. R[0] and P[0] are the actual
// CG residual and direction vectors.
type Families struct {
	K int
	R []vec.Vector // k+1 vectors
	P []vec.Vector // k+2 vectors

	pool *vec.Pool // kernels dispatch here; nil = serial
}

// NewFamilies builds the families at start-up from r(0) = p(0) using
// k+1 matrix–vector products (the paper's "initial start up").
func NewFamilies(a sparse.Matrix, r0 vec.Vector, k int) *Families {
	return NewFamiliesPool(a, r0, k, nil)
}

// NewFamiliesPool is NewFamilies with the family's axpy/matvec kernels
// routed through the given worker pool (nil = serial).
func NewFamiliesPool(a sparse.Matrix, r0 vec.Vector, k int, pool *vec.Pool) *Families {
	if k < 0 {
		panic("core: look-ahead parameter must be >= 0")
	}
	f := &Families{
		K:    k,
		R:    make([]vec.Vector, k+1),
		P:    make([]vec.Vector, k+2),
		pool: pool,
	}
	n := a.Dim()
	for i := range f.R {
		f.R[i] = vec.New(n)
	}
	for i := range f.P {
		f.P[i] = vec.New(n)
	}
	f.Rebuild(a, r0)
	return f
}

// Rebuild refills the families in place from a fresh start-up residual
// r0 = p0, using the same k+1 matrix–vector products as construction —
// the warm-reuse path of the engine kernels: a persistent Families is
// rebuilt per solve with zero allocations.
func (f *Families) Rebuild(a sparse.Matrix, r0 vec.Vector) {
	vec.Copy(f.R[0], r0)
	for i := 1; i <= f.K; i++ {
		sparse.PooledMulVec(a, f.pool, f.R[i], f.R[i-1])
	}
	for i := 0; i <= f.K; i++ {
		vec.Copy(f.P[i], f.R[i])
	}
	sparse.PooledMulVec(a, f.pool, f.P[f.K+1], f.P[f.K])
}

// Step advances the families by one CG iteration: R'_i = R_i - λ P_{i+1}
// (axpys), P'_i = R'_i + a P_i for i <= k (axpys), and the single
// matrix–vector product P'_{k+1} = A P'_k.
func (f *Families) Step(a sparse.Matrix, lambda, alpha float64) {
	f.StepR(lambda)
	f.StepP(a, alpha)
}

// StepR performs the residual-family half of a step: R'_i = R_i - λ P_{i+1}.
// The direction family is untouched, so the caller may inspect the new
// residual (for example to form alpha) before calling StepP.
func (f *Families) StepR(lambda float64) {
	for i := 0; i <= f.K; i++ {
		paxpy(f.pool, -lambda, f.P[i+1], f.R[i])
	}
}

// StepP performs the direction-family half of a step: P'_i = R'_i + a P_i
// for i <= k, then the single matrix–vector product P'_{k+1} = A P'_k.
func (f *Families) StepP(a sparse.Matrix, alpha float64) {
	for i := 0; i <= f.K; i++ {
		pxpay(f.pool, f.R[i], alpha, f.P[i])
	}
	sparse.PooledMulVec(a, f.pool, f.P[f.K+1], f.P[f.K])
}

// DirectTops computes the three window-top inner products from the
// current (already advanced) families:
//
//	topN  = (r, A^{2k+1} p) = (A^k r,     A^{k+1} p)
//	topW1 = (p, A^{2k+1} p) = (A^k p,     A^{k+1} p)
//	topW2 = (p, A^{2k+2} p) = (A^{k+1} p, A^{k+1} p)
func (f *Families) DirectTops() (topN, topW1, topW2 float64) {
	k := f.K
	topN = pdot(f.pool, f.R[k], f.P[k+1])
	topW1 = pdot(f.pool, f.P[k], f.P[k+1])
	topW2 = pdot(f.pool, f.P[k+1], f.P[k+1])
	return topN, topW1, topW2
}

// Residual returns the live residual vector r (family member R[0]).
func (f *Families) Residual() vec.Vector { return f.R[0] }

// Direction returns the live direction vector p (family member P[0]).
func (f *Families) Direction() vec.Vector { return f.P[0] }

// AP returns A p (family member P[1]).
func (f *Families) AP() vec.Vector { return f.P[1] }

// CheckInvariant verifies that every stored power really equals A times
// its predecessor within tol, returning the largest violation. It is a
// test/diagnostic hook; the solver never calls it.
func (f *Families) CheckInvariant(a sparse.Matrix, tol float64) (maxErr float64, ok bool) {
	n := a.Dim()
	tmp := vec.New(n)
	check := func(hi, lo vec.Vector) {
		a.MulVec(tmp, lo)
		for i := range tmp {
			d := tmp[i] - hi[i]
			if d < 0 {
				d = -d
			}
			if d > maxErr {
				maxErr = d
			}
		}
	}
	for i := 1; i <= f.K; i++ {
		check(f.R[i], f.R[i-1])
	}
	for i := 1; i <= f.K+1; i++ {
		check(f.P[i], f.P[i-1])
	}
	return maxErr, maxErr <= tol
}
