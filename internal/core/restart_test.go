package core

import (
	"testing"

	"vrcg/internal/vec"
	"vrcg/sparse"
)

// TestDivergenceRestartRecovers: an input whose recurrences used to
// overflow to ±Inf and error with ErrIndefinite now restarts from the
// true residual and converges. The seed is chosen so the K=0 recurrence
// actually diverges under the current dot-product summation order; it
// was re-picked when the vec kernels moved to blocked-tree reductions.
func TestDivergenceRestartRecovers(t *testing.T) {
	seed := uint64(0xca3c1ad75472635e)
	n := 8
	a := sparse.RandomSPD(n, 4, seed)
	x := vec.New(n)
	vec.Random(x, seed+1)
	b := vec.New(n)
	a.MulVec(b, x)
	res, err := Solve(a, b, Options{K: 0, Tol: 1e-9, MaxIter: 30 * n})
	if err != nil {
		t.Fatalf("divergent seed no longer recovers: %v", err)
	}
	if !res.Converged {
		t.Fatalf("not converged: %d iterations, residual %.3e", res.Iterations, res.ResidualNorm)
	}
	if res.Replacements == 0 {
		t.Fatal("expected at least one divergence restart on this seed")
	}
	if res.TrueResidualNorm > 1e-6*vec.Norm2(b) {
		t.Fatalf("true residual %.3e above the property-test bound", res.TrueResidualNorm)
	}
}

// TestDivergenceGuardNotStormy: on a legitimately ill-conditioned
// system the guard must not fire every step — after a restart the
// trust scale rebases, so Replacements stays far below Iterations.
func TestDivergenceGuardNotStormy(t *testing.T) {
	a := sparse.PrescribedSpectrum(256, 1e9)
	x := vec.New(a.Dim())
	vec.Random(x, 7)
	b := vec.New(a.Dim())
	a.MulVec(b, x)
	res, err := Solve(a, b, Options{K: 2, Tol: 1e-8, MaxIter: 2000})
	// Convergence at kappa 1e9 is not guaranteed in the budget; the
	// claim under test is only that restarts do not storm.
	if res == nil {
		t.Fatalf("no result: %v", err)
	}
	if res.Iterations > 0 && res.Replacements > res.Iterations/4 {
		t.Fatalf("restart storm: %d replacements in %d iterations",
			res.Replacements, res.Iterations)
	}
}
