package core

import (
	"fmt"

	"vrcg/internal/vec"
	"vrcg/sparse"
)

// SolveJacobi runs the look-ahead iteration on the symmetrically
// diagonally scaled system
//
//	(D^{-1/2} A D^{-1/2}) y = D^{-1/2} b,   x = D^{-1/2} y
//
// which is exactly Jacobi-preconditioned CG expressed as a plain CG
// solve. The paper's introduction points at preconditioning as the
// standard enhancement; symmetric diagonal scaling is the form directly
// compatible with the inner-product recurrences (the scaled operator is
// a single SPD matrix, so every recurrence applies verbatim). Scaling
// also improves the Gram-sequence magnitudes the same way the
// distributed solver's spectral scaling does.
func SolveJacobi(a *sparse.CSR, b vec.Vector, o Options) (*Result, error) {
	if a.Dim() != len(b) {
		return nil, fmt.Errorf("core: matrix order %d but rhs length %d: %w", a.Dim(), len(b), sparse.ErrDim)
	}
	scaled, invSqrt, err := sparse.SymDiagScaled(a)
	if err != nil {
		return nil, fmt.Errorf("core: Jacobi scaling failed: %w", err)
	}
	n := a.Dim()
	bs := vec.New(n)
	vec.MulElem(bs, b, invSqrt)

	so := o
	if o.X0 != nil {
		// y0 = D^{1/2} x0.
		y0 := vec.New(n)
		for i := range y0 {
			y0[i] = o.X0[i] / invSqrt[i]
		}
		so.X0 = y0
	}
	res, err := Solve(scaled, bs, so)
	if res != nil && res.X != nil {
		// x = D^{-1/2} y in place.
		vec.MulElem(res.X, res.X, invSqrt)
		// Residual norms reported by Solve refer to the scaled system;
		// recompute the true residual for the original system.
		tr := vec.New(n)
		a.MulVec(tr, res.X)
		vec.Sub(tr, b, tr)
		res.TrueResidualNorm = vec.Norm2(tr)
	}
	return res, err
}
