package core_test

import (
	"fmt"
	"log"

	"vrcg/internal/core"
	"vrcg/internal/vec"
	"vrcg/sparse"
)

// ExampleSolve demonstrates the basic solver call: the restructured CG
// iteration with look-ahead k = 2 on a 2D Poisson system.
func ExampleSolve() {
	a := sparse.Poisson2D(16) // 256 unknowns
	xTrue := vec.New(a.Dim())
	vec.Random(xTrue, 1)
	b := vec.New(a.Dim())
	a.MulVec(b, xTrue)

	res, err := core.Solve(a, b, core.Options{K: 2, Tol: 1e-10})
	if err != nil {
		log.Fatal(err)
	}
	errV := vec.New(a.Dim())
	vec.Sub(errV, res.X, xTrue)
	fmt.Printf("converged=%v error-small=%v one-matvec-per-iteration=%v\n",
		res.Converged,
		vec.Norm2(errV) < 1e-6,
		res.Stats.MatVecs <= res.Iterations+res.Refreshes*5+10)
	// Output: converged=true error-small=true one-matvec-per-iteration=true
}

// ExampleNewIterator drives the solve step by step.
func ExampleNewIterator() {
	a := sparse.Poisson1D(32)
	b := vec.New(32)
	vec.Random(b, 2)

	it, err := core.NewIterator(a, b, core.Options{K: 1, Tol: 1e-9})
	if err != nil {
		log.Fatal(err)
	}
	for {
		more, err := it.Step()
		if err != nil {
			log.Fatal(err)
		}
		if !more {
			break
		}
	}
	fmt.Printf("converged=%v finite-steps=%v\n", it.Converged(), it.Iteration() <= 40)
	// Output: converged=true finite-steps=true
}

// ExampleStarCoefficients shows the paper's equation (*) coefficients
// for a two-step look-ahead with given parameter history.
func ExampleStarCoefficients() {
	lambdas := []float64{0.5, 0.25}
	alphas := []float64{0.1, 0.2}
	aC, bC, cC := core.StarCoefficients(lambdas, alphas)
	fmt.Printf("lengths: %d %d %d (2k+1 for k=2)\n", len(aC), len(bC), len(cC))
	// rho_0 is invariant under the CG coefficient recurrences, so the
	// (r,r) carry-through coefficient is always 1.
	fmt.Printf("a0=%v\n", aC[0])
	// Output:
	// lengths: 5 5 5 (2k+1 for k=2)
	// a0=1
}
