package core

import (
	"fmt"
	"math"

	"vrcg/internal/krylov"
	"vrcg/internal/vec"
	"vrcg/sparse"
)

// Iterator exposes the look-ahead iteration one step at a time, for
// callers that embed the solver in their own control loop (adaptive
// tolerances, inner-outer schemes, instrumentation). Solve is a thin
// wrapper over the same mechanics; Iterator trades its conveniences
// (history, callbacks) for step-level control.
type Iterator struct {
	a   sparse.Matrix
	b   vec.Vector
	opt Options

	x         vec.Vector
	fam       *Families
	win       *Window
	rr        float64
	threshold float64
	iter      int
	done      bool
	stats     krylov.Stats
}

// NewIterator prepares a look-ahead iteration for A x = b. The same
// option fields as Solve apply, except history/callback/validation.
func NewIterator(a sparse.Matrix, b vec.Vector, o Options) (*Iterator, error) {
	if a.Dim() != len(b) {
		return nil, fmt.Errorf("core: matrix order %d but rhs length %d: %w", a.Dim(), len(b), sparse.ErrDim)
	}
	if o.K < 0 {
		return nil, fmt.Errorf("core: look-ahead parameter K = %d must be >= 0: %w", o.K, krylov.ErrBadOption)
	}
	if o.X0 != nil && len(o.X0) != a.Dim() {
		return nil, fmt.Errorf("core: x0 length %d for order %d: %w", len(o.X0), a.Dim(), sparse.ErrDim)
	}
	n := a.Dim()
	if o.Tol == 0 {
		o.Tol = 1e-10
	}
	if o.ReanchorEvery == 0 {
		o.ReanchorEvery = DefaultReanchorInterval(o.K)
	}

	it := &Iterator{a: a, b: vec.Clone(b), opt: o}
	if o.X0 != nil {
		it.x = vec.Clone(o.X0)
	} else {
		it.x = vec.New(n)
	}
	r0 := vec.New(n)
	sparse.PooledMulVec(a, o.Pool, r0, it.x)
	vec.Sub(r0, b, r0)
	it.stats.MatVecs++

	bn := vec.Norm2(b)
	if bn == 0 {
		bn = 1
	}
	it.threshold = o.Tol * bn

	it.fam = NewFamiliesPool(a, r0, o.K, o.Pool)
	it.stats.MatVecs += o.K + 1
	it.win = NewWindow(o.K)
	it.win.SetPool(o.Pool)
	it.win.InitDirect(it.fam.R, it.fam.P)
	it.stats.InnerProducts += (2*o.K + 1) + (2*o.K + 2) + (2*o.K + 3)
	it.rr = it.win.RR()
	it.done = it.resNorm() <= it.threshold
	return it, nil
}

func (it *Iterator) resNorm() float64 { return math.Sqrt(math.Max(it.rr, 0)) }

// Iteration returns the number of completed steps.
func (it *Iterator) Iteration() int { return it.iter }

// ResidualNorm returns the current recurrence residual norm.
func (it *Iterator) ResidualNorm() float64 { return it.resNorm() }

// Converged reports whether the tolerance has been met.
func (it *Iterator) Converged() bool { return it.done }

// X returns the live iterate (not a copy; mutate at your peril).
func (it *Iterator) X() vec.Vector { return it.x }

// Stats returns the work counters so far.
func (it *Iterator) Stats() krylov.Stats { return it.stats }

// Step advances one iteration. It returns false once converged (further
// calls are no-ops) and an error on breakdown.
func (it *Iterator) Step() (bool, error) {
	if it.done {
		return false, nil
	}
	k := it.opt.K

	pap := it.win.PAP()
	if pap <= 0 || math.IsNaN(pap) {
		pap = pdot(it.opt.Pool, it.fam.Direction(), it.fam.AP())
		it.stats.InnerProducts++
		it.win.W[1] = pap
	}
	if pap <= 0 || math.IsNaN(pap) {
		return false, fmt.Errorf("core: (p,Ap) = %g at iteration %d: %w", pap, it.iter, krylov.ErrIndefinite)
	}
	lambda := it.rr / pap

	paxpy(it.opt.Pool, lambda, it.fam.Direction(), it.x)
	it.stats.VectorUpdates++
	it.fam.StepR(lambda)
	it.stats.VectorUpdates += k + 1

	rrNew := it.win.PeekRR(lambda)
	fellBack := false
	if rrNew <= 0 || math.IsNaN(rrNew) {
		rrNew = pdot(it.opt.Pool, it.fam.Residual(), it.fam.Residual())
		it.stats.InnerProducts++
		fellBack = true
	}
	if it.rr == 0 {
		return false, fmt.Errorf("core: (r,r) vanished at iteration %d: %w", it.iter, krylov.ErrBreakdown)
	}
	alpha := rrNew / it.rr

	it.fam.StepP(it.a, alpha)
	it.stats.VectorUpdates += k + 1
	it.stats.MatVecs++

	topN, topW1, topW2 := it.fam.DirectTops()
	it.stats.InnerProducts += 3
	it.win.Step(lambda, alpha, topN, topW1, topW2)
	if fellBack {
		it.win.M[0] = rrNew
	}
	it.rr = it.win.RR()
	it.iter++

	if it.opt.ReanchorEvery > 0 && it.iter%it.opt.ReanchorEvery == 0 {
		if !it.opt.WindowOnlyReanchor {
			for i := 1; i <= k; i++ {
				sparse.PooledMulVec(it.a, it.opt.Pool, it.fam.R[i], it.fam.R[i-1])
			}
			for i := 1; i <= k+1; i++ {
				sparse.PooledMulVec(it.a, it.opt.Pool, it.fam.P[i], it.fam.P[i-1])
			}
			it.stats.MatVecs += 2*k + 1
		}
		it.win.InitDirect(it.fam.R, it.fam.P)
		it.stats.InnerProducts += (2*k + 1) + (2*k + 2) + (2*k + 3)
		it.rr = it.win.RR()
	}

	if it.resNorm() <= it.threshold {
		// Verify with a direct product before declaring convergence.
		rrDirect := pdot(it.opt.Pool, it.fam.Residual(), it.fam.Residual())
		it.stats.InnerProducts++
		it.win.M[0] = rrDirect
		it.rr = rrDirect
		if it.resNorm() <= it.threshold {
			it.done = true
		}
	}
	return !it.done, nil
}

// TrueResidualNorm computes ||b - A x|| directly (one matvec).
func (it *Iterator) TrueResidualNorm() float64 {
	n := it.a.Dim()
	tr := vec.New(n)
	sparse.PooledMulVec(it.a, it.opt.Pool, tr, it.x)
	vec.Sub(tr, it.b, tr)
	it.stats.MatVecs++
	return vec.Norm2(tr)
}
