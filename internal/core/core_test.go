package core

import (
	"math"
	"testing"
	"testing/quick"

	"vrcg/internal/krylov"
	"vrcg/internal/vec"
	"vrcg/sparse"
)

func relErrT(got, want float64) float64 {
	den := math.Abs(want)
	if den == 0 {
		den = 1
	}
	return math.Abs(got-want) / den
}

// --- Window / Families unit tests ---

func TestNewWindowSizes(t *testing.T) {
	for _, k := range []int{0, 1, 3, 7} {
		w := NewWindow(k)
		if len(w.M) != 2*k+1 || len(w.N) != 2*k+2 || len(w.W) != 2*k+3 {
			t.Fatalf("k=%d: window sizes %d/%d/%d", k, len(w.M), len(w.N), len(w.W))
		}
	}
}

func TestNewWindowNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWindow(-1)
}

func TestWindowClone(t *testing.T) {
	w := NewWindow(1)
	w.M[0] = 5
	c := w.Clone()
	c.M[0] = 9
	if w.M[0] != 5 {
		t.Fatal("Clone aliases storage")
	}
}

func TestFamiliesStartup(t *testing.T) {
	a := sparse.Poisson1D(12)
	r0 := vec.New(12)
	vec.Random(r0, 1)
	k := 3
	fam := NewFamilies(a, r0, k)
	if len(fam.R) != k+1 || len(fam.P) != k+2 {
		t.Fatalf("family sizes %d/%d", len(fam.R), len(fam.P))
	}
	if !vec.Equal(fam.R[0], r0) {
		t.Fatal("R[0] != r0")
	}
	if maxErr, ok := fam.CheckInvariant(a, 1e-12); !ok {
		t.Fatalf("power invariant violated at startup: %g", maxErr)
	}
}

func TestFamiliesStepPreservesPowerInvariant(t *testing.T) {
	a := sparse.Poisson1D(16)
	r0 := vec.New(16)
	vec.Random(r0, 2)
	fam := NewFamilies(a, r0, 2)
	// Arbitrary but sane scalars.
	fam.Step(a, 0.3, 0.5)
	if maxErr, ok := fam.CheckInvariant(a, 1e-10); !ok {
		t.Fatalf("power invariant violated after step: %g", maxErr)
	}
	fam.Step(a, 0.1, 0.9)
	if maxErr, ok := fam.CheckInvariant(a, 1e-10); !ok {
		t.Fatalf("power invariant violated after two steps: %g", maxErr)
	}
}

func TestInitDirectMatchesBruteForce(t *testing.T) {
	a := sparse.Poisson1D(10)
	r0 := vec.New(10)
	vec.Random(r0, 3)
	k := 2
	fam := NewFamilies(a, r0, k)
	w := NewWindow(k)
	w.InitDirect(fam.R, fam.P)

	// Brute force: materialize A^i r0 up to 2k+2 and dot directly.
	powsR := sparse.PowerApply(a, r0, 2*k+2)
	for i := 0; i <= 2*k; i++ {
		want := vec.Dot(r0, powsR[i])
		if relErrT(w.M[i], want) > 1e-12 {
			t.Fatalf("M[%d] = %g, want %g", i, w.M[i], want)
		}
	}
	// p0 = r0 at startup, so N and W compare against the same powers.
	for i := 0; i <= 2*k+1; i++ {
		want := vec.Dot(r0, powsR[i])
		if relErrT(w.N[i], want) > 1e-12 {
			t.Fatalf("N[%d] = %g, want %g", i, w.N[i], want)
		}
	}
	for i := 0; i <= 2*k+2; i++ {
		want := vec.Dot(r0, powsR[i])
		if relErrT(w.W[i], want) > 1e-12 {
			t.Fatalf("W[%d] = %g, want %g", i, w.W[i], want)
		}
	}
}

func TestInitDirectSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWindow(2).InitDirect(make([]vec.Vector, 1), make([]vec.Vector, 1))
}

// TestWindowStepTracksDirectDots is the central §5 verification: run CG
// on vectors, run the window on scalars, and require every window entry
// to match the directly computed inner product at every iteration.
func TestWindowStepTracksDirectDots(t *testing.T) {
	for _, k := range []int{0, 1, 2, 4} {
		a := sparse.Poisson2D(5) // n = 25
		n := a.Dim()
		r := vec.New(n)
		vec.Random(r, 7)
		fam := NewFamilies(a, r, k)
		win := NewWindow(k)
		win.InitDirect(fam.R, fam.P)

		// The recurrences are exact in exact arithmetic; in floating
		// point the M update cancels catastrophically as the residual
		// shrinks, so the check uses a tolerance relative to the
		// window's initial scale plus a relative component.
		scale0 := win.M[0]
		for iter := 0; iter < 6; iter++ {
			rr := win.RR()
			pap := win.PAP()
			if pap <= 0 {
				t.Fatalf("k=%d iter=%d: pap=%g", k, iter, pap)
			}
			lambda := rr / pap
			fam.StepR(lambda)
			rrNew := win.PeekRR(lambda)
			alpha := rrNew / rr
			fam.StepP(a, alpha)
			topN, topW1, topW2 := fam.DirectTops()
			win.Step(lambda, alpha, topN, topW1, topW2)

			within := func(got, want float64) bool {
				return relErrT(got, want) <= 1e-5 || math.Abs(got-want) <= 1e-10*scale0
			}
			// Every window entry must equal its direct evaluation.
			rPows := sparse.PowerApply(a, fam.Residual(), 2*k+2)
			pPows := sparse.PowerApply(a, fam.Direction(), 2*k+2)
			for i := 0; i <= 2*k; i++ {
				want := vec.Dot(fam.Residual(), rPows[i])
				if !within(win.M[i], want) {
					t.Fatalf("k=%d iter=%d M[%d]: %g vs %g", k, iter, i, win.M[i], want)
				}
			}
			for i := 0; i <= 2*k+1; i++ {
				want := vec.Dot(fam.Residual(), pPows[i])
				if !within(win.N[i], want) {
					t.Fatalf("k=%d iter=%d N[%d]: %g vs %g", k, iter, i, win.N[i], want)
				}
			}
			for i := 0; i <= 2*k+2; i++ {
				want := vec.Dot(fam.Direction(), pPows[i])
				if !within(win.W[i], want) {
					t.Fatalf("k=%d iter=%d W[%d]: %g vs %g", k, iter, i, win.W[i], want)
				}
			}
		}
	}
}

// --- Coefficient-polynomial (equation *) tests ---

func TestCoeffPairBasics(t *testing.T) {
	r := NewCoeffR()
	p := NewCoeffP()
	if r.Degree() != 0 || p.Degree() != 0 {
		t.Fatal("fresh coefficient pairs should have degree 0")
	}
	s := r.shiftA()
	if s.Degree() != 1 || s.Rho[0] != 0 || s.Rho[1] != 1 {
		t.Fatalf("shiftA wrong: %+v", s)
	}
	sum := r.AddScaled(2, p)
	if sum.Rho[0] != 1 || sum.Pi[0] != 2 {
		t.Fatalf("AddScaled wrong: %+v", sum)
	}
	c := sum.Clone()
	c.Rho[0] = 9
	if sum.Rho[0] != 1 {
		t.Fatal("Clone aliases storage")
	}
}

func TestStepCGDegreeGrowth(t *testing.T) {
	r := NewCoeffR()
	p := NewCoeffP()
	for j := 1; j <= 5; j++ {
		r, p = StepCG(r, p, 0.5, 0.25)
		if r.Degree() != j || p.Degree() != j {
			t.Fatalf("after %d steps degrees %d/%d", j, r.Degree(), p.Degree())
		}
	}
}

// TestCoeffPairRepresentsIterates: apply StepCG to coefficients with the
// true CG scalars, reconstruct r(n)/p(n) from base Krylov powers, and
// compare to the vector iterates — claim C3's representation.
func TestCoeffPairRepresentsIterates(t *testing.T) {
	a := sparse.Poisson1D(14)
	n := a.Dim()
	b := vec.New(n)
	vec.Random(b, 11)

	// Run standard CG manually, capturing scalars and iterates.
	r := vec.Clone(b)
	p := vec.Clone(r)
	ap := vec.New(n)
	rr := vec.Dot(r, r)
	k := 4
	rPows := sparse.PowerApply(a, r, k)
	pPows := rPows // p(0) = r(0)

	cr := NewCoeffR()
	cp := NewCoeffP()
	for it := 0; it < k; it++ {
		a.MulVec(ap, p)
		lambda := rr / vec.Dot(p, ap)
		vec.Axpy(-lambda, ap, r)
		rrNew := vec.Dot(r, r)
		alpha := rrNew / rr
		vec.Xpay(r, alpha, p)
		rr = rrNew
		cr, cp = StepCG(cr, cp, lambda, alpha)

		// Reconstruct from coefficients.
		recR := vec.New(n)
		for i, c := range cr.Rho {
			vec.Axpy(c, rPows[i], recR)
		}
		for i, c := range cr.Pi {
			vec.Axpy(c, pPows[i], recR)
		}
		if !vec.EqualTol(recR, r, 1e-8*(1+vec.NormInf(r))) {
			t.Fatalf("iteration %d: coefficient reconstruction of r diverges", it+1)
		}
		recP := vec.New(n)
		for i, c := range cp.Rho {
			vec.Axpy(c, rPows[i], recP)
		}
		for i, c := range cp.Pi {
			vec.Axpy(c, pPows[i], recP)
		}
		if !vec.EqualTol(recP, p, 1e-8*(1+vec.NormInf(p))) {
			t.Fatalf("iteration %d: coefficient reconstruction of p diverges", it+1)
		}
	}
}

// TestStarEquation verifies equation (*) end to end: the contraction of
// the k-step coefficients against the base Gram sequences equals the
// directly computed (r(n), r(n)) and (p(n), A p(n)).
func TestStarEquation(t *testing.T) {
	for _, k := range []int{1, 2, 3, 5} {
		a := sparse.Poisson2D(4) // n=16
		n := a.Dim()
		b := vec.New(n)
		vec.Random(b, uint64(20+k))

		r := vec.Clone(b)
		p := vec.Clone(r)
		ap := vec.New(n)
		rr := vec.Dot(r, r)

		// Base Gram sequences at iteration 0 (p = r).
		pows := sparse.PowerApply(a, r, 2*k+1)
		g := BaseGram{
			Mu:    make([]float64, 2*k+2),
			Nu:    make([]float64, 2*k+2),
			Omega: make([]float64, 2*k+2),
		}
		for i := 0; i <= 2*k+1; i++ {
			d := vec.Dot(r, pows[i])
			g.Mu[i], g.Nu[i], g.Omega[i] = d, d, d
		}

		cr := NewCoeffR()
		cp := NewCoeffP()
		var lambdas, alphas []float64
		for it := 0; it < k; it++ {
			a.MulVec(ap, p)
			lambda := rr / vec.Dot(p, ap)
			vec.Axpy(-lambda, ap, r)
			rrNew := vec.Dot(r, r)
			alpha := rrNew / rr
			vec.Xpay(r, alpha, p)
			rr = rrNew
			lambdas = append(lambdas, lambda)
			alphas = append(alphas, alpha)
			cr, cp = StepCG(cr, cp, lambda, alpha)
		}

		// (r(k), r(k)) via contraction (equation *).
		gotRR := g.Contract(cr, cr, 0)
		wantRR := vec.Dot(r, r)
		if relErrT(gotRR, wantRR) > 1e-8 {
			t.Fatalf("k=%d: (*) gives (r,r)=%g, direct %g", k, gotRR, wantRR)
		}
		// (p(k), A p(k)) via contraction with shift 1.
		gotPAP := g.Contract(cp, cp, 1)
		a.MulVec(ap, p)
		wantPAP := vec.Dot(p, ap)
		if relErrT(gotPAP, wantPAP) > 1e-8 {
			t.Fatalf("k=%d: (*) gives (p,Ap)=%g, direct %g", k, gotPAP, wantPAP)
		}

		// And the explicit coefficient arrays of (*).
		aC, bC, cC := StarCoefficients(lambdas, alphas)
		var viaStar float64
		for i := 0; i <= 2*k; i++ {
			viaStar += aC[i]*g.Mu[i] + bC[i]*g.Nu[i] + cC[i]*g.Omega[i]
		}
		if relErrT(viaStar, wantRR) > 1e-8 {
			t.Fatalf("k=%d: StarCoefficients give %g, direct %g", k, viaStar, wantRR)
		}
	}
}

// TestStarCoefficientsDegreeInParams verifies the paper's §5 structural
// claim: the (*) coefficients are polynomials at most quadratic in each
// parameter separately. We check quadratic dependence numerically: for
// fixed other parameters, f(t) = coefficient as function of one lambda
// must satisfy the exactness of quadratic interpolation.
func TestStarCoefficientsDegreeInParams(t *testing.T) {
	k := 3
	baseL := []float64{0.4, 0.7, 0.3}
	baseA := []float64{0.5, 0.2, 0.6}
	for varyIdx := 0; varyIdx < k; varyIdx++ {
		coefAt := func(tv float64) []float64 {
			ls := append([]float64{}, baseL...)
			ls[varyIdx] = tv
			aC, bC, cC := StarCoefficients(ls, baseA)
			out := append(append(append([]float64{}, aC...), bC...), cC...)
			return out
		}
		// Sample at four points; quadratic in the parameter means the
		// third finite difference vanishes.
		f0 := coefAt(1.0)
		f1 := coefAt(2.0)
		f2 := coefAt(3.0)
		f3 := coefAt(4.0)
		for i := range f0 {
			third := f3[i] - 3*f2[i] + 3*f1[i] - f0[i]
			scale := math.Abs(f0[i]) + math.Abs(f1[i]) + math.Abs(f2[i]) + math.Abs(f3[i]) + 1
			if math.Abs(third)/scale > 1e-9 {
				t.Fatalf("coefficient %d is not quadratic in lambda_%d (third difference %g)",
					i, varyIdx, third)
			}
		}
	}
}

func TestStarCoefficientsLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	StarCoefficients([]float64{1}, []float64{1, 2})
}

// --- Solver tests ---

func TestSolveMatchesCGIterates(t *testing.T) {
	// In exact arithmetic VRCG generates the same iterates as CG; in
	// floating point they track each other to high accuracy for
	// well-conditioned problems.
	a := sparse.Poisson2D(6)
	n := a.Dim()
	b := vec.New(n)
	vec.Random(b, 31)
	cg, err := krylov.CG(a, b, krylov.Options{Tol: 1e-10, RecordHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{0, 1, 2, 4} {
		vr, err := Solve(a, b, Options{K: k, Tol: 1e-10, RecordHistory: true})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !vr.Converged {
			t.Fatalf("k=%d: did not converge", k)
		}
		if !vec.EqualTol(vr.X, cg.X, 1e-6) {
			t.Fatalf("k=%d: solution differs from CG", k)
		}
		// Residual histories should track closely while the residual is
		// still well above the drift floor.
		m := len(cg.History)
		if len(vr.History) < m {
			m = len(vr.History)
		}
		for i := 0; i < m; i++ {
			if cg.History[i] < 1e-5*cg.History[0] {
				break
			}
			if relErrT(vr.History[i], cg.History[i]) > 1e-3 {
				t.Fatalf("k=%d iter %d: residual %g vs CG %g", k, i, vr.History[i], cg.History[i])
			}
		}
	}
}

func TestSolveConvergesVariousProblems(t *testing.T) {
	problems := []struct {
		name string
		a    sparse.Matrix
		seed uint64
	}{
		{"poisson1d", sparse.Poisson1D(64), 1},
		{"poisson2d", sparse.Poisson2D(8), 2},
		{"poisson3d", sparse.Poisson3D(4), 3},
		{"randomspd", sparse.RandomSPD(80, 6, 4), 4},
		{"ring", sparse.RingLaplacian(50, 0.5), 5},
	}
	for _, pr := range problems {
		n := pr.a.Dim()
		b := vec.New(n)
		vec.Random(b, pr.seed)
		res, err := Solve(pr.a, b, Options{K: 3, Tol: 1e-9})
		if err != nil {
			t.Fatalf("%s: %v", pr.name, err)
		}
		if !res.Converged {
			t.Fatalf("%s: no convergence in %d iterations", pr.name, res.Iterations)
		}
		if res.TrueResidualNorm > 1e-6*vec.Norm2(b) {
			t.Fatalf("%s: true residual %g", pr.name, res.TrueResidualNorm)
		}
	}
}

func TestSolveZeroRHS(t *testing.T) {
	a := sparse.Poisson1D(8)
	res, err := Solve(a, vec.New(8), Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations != 0 {
		t.Fatalf("zero rhs: converged=%v iters=%d", res.Converged, res.Iterations)
	}
}

func TestSolveRejectsBadArguments(t *testing.T) {
	a := sparse.Poisson1D(5)
	if _, err := Solve(a, vec.New(6), Options{K: 1}); err == nil {
		t.Fatal("expected dimension error")
	}
	if _, err := Solve(a, vec.New(5), Options{K: -1}); err == nil {
		t.Fatal("expected K error")
	}
	if _, err := Solve(a, vec.New(5), Options{K: 1, X0: vec.New(3)}); err == nil {
		t.Fatal("expected x0 dimension error")
	}
}

func TestSolveIndefiniteDetected(t *testing.T) {
	a := sparse.DiagonalMatrix(vec.NewFrom([]float64{1, -2, 1}))
	b := vec.NewFrom([]float64{1, 1, 1})
	if _, err := Solve(a, b, Options{K: 1}); err == nil {
		t.Fatal("expected indefinite error")
	}
}

func TestSolveOneMatvecPerIteration(t *testing.T) {
	// Claim C7: one matvec per iteration beyond startup and the final
	// residual check. Startup = 1 (r0) + k+1 (families); exit = 1.
	a := sparse.Poisson2D(6)
	b := vec.New(a.Dim())
	vec.Random(b, 17)
	k := 3
	res, err := Solve(a, b, Options{K: k, Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	// 1/iteration + startup (r0 + k+1 family powers) + exit check +
	// 2k+1 per family refresh (stabilization).
	want := res.Iterations + 1 + (k + 1) + 1 + res.Refreshes*(2*k+1)
	if res.Stats.MatVecs != want {
		t.Fatalf("matvecs = %d, want %d (1/iteration + startup + exit + refreshes)", res.Stats.MatVecs, want)
	}
	// The paper-pure profile: window-only re-anchoring keeps it at
	// exactly one matvec per iteration.
	pure, err := Solve(a, b, Options{K: k, Tol: 1e-8, WindowOnlyReanchor: true})
	if err != nil {
		t.Fatal(err)
	}
	pureWant := pure.Iterations + 1 + (k + 1) + 1 + pure.Refreshes*(2*k+1)
	if pure.Stats.MatVecs != pureWant {
		t.Fatalf("window-only matvecs = %d, want %d", pure.Stats.MatVecs, pureWant)
	}
}

func TestSolveDirectDotsPerIterationBounded(t *testing.T) {
	// Claim C5/C7: O(1) direct inner products per iteration. With the
	// published recurrences three per iteration are required, plus
	// startup, fallbacks, and periodic re-anchoring (6k+6 each).
	a := sparse.Poisson2D(6)
	b := vec.New(a.Dim())
	vec.Random(b, 18)
	k := 2
	interval := 8
	res, err := Solve(a, b, Options{K: k, Tol: 1e-8, ReanchorEvery: interval})
	if err != nil {
		t.Fatal(err)
	}
	windowDots := (2*k + 1) + (2*k + 2) + (2*k + 3)
	want := 3*res.Iterations + windowDots + res.FallbackDots + res.Reanchors*windowDots
	if res.Stats.InnerProducts != want {
		t.Fatalf("inner products = %d, want %d (3/iter + startup + fallbacks + reanchors)",
			res.Stats.InnerProducts, want)
	}
	// Amortized bound: still O(1) per iteration.
	perIter := float64(res.Stats.InnerProducts-windowDots) / float64(res.Iterations)
	if perIter > 3+float64(windowDots)/float64(interval)+2 {
		t.Fatalf("amortized direct dots per iteration %g too high", perIter)
	}
}

func TestSolveDriftSmallWithValidation(t *testing.T) {
	a := sparse.Poisson2D(7)
	b := vec.New(a.Dim())
	vec.Random(b, 19)
	res, err := Solve(a, b, Options{K: 2, Tol: 1e-8, ValidateEvery: 1, ReanchorEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Drift.Checks == 0 {
		t.Fatal("no drift checks recorded")
	}
	// pap does not collapse the way rr does; with tight re-anchoring its
	// recurrence drift stays small.
	if res.Drift.MaxRelPAP > 1e-3 {
		t.Fatalf("recurrence (p,Ap) drift too large: %g", res.Drift.MaxRelPAP)
	}
	if res.ValidationDots != 2*res.Drift.Checks {
		t.Fatalf("validation dots %d for %d checks", res.ValidationDots, res.Drift.Checks)
	}
}

func TestSolveNoReanchorDriftsMoreThanAnchored(t *testing.T) {
	// The historically important comparison: the paper's pure
	// recurrence algorithm (no re-anchoring) drifts, and stabilization
	// by periodic direct recomputation bounds the drift — the story
	// successor papers formalized.
	a := sparse.Poisson1D(64)
	b := vec.New(64)
	vec.Random(b, 23)
	opts := Options{K: 4, Tol: 1e-9, MaxIter: 800, ValidateEvery: 1}

	loose := opts
	loose.ReanchorEvery = -1
	looseRes, looseErr := Solve(a, b, loose)

	anchored := opts
	anchored.ReanchorEvery = 8
	anchoredRes, err := Solve(a, b, anchored)
	if err != nil {
		t.Fatal(err)
	}
	if !anchoredRes.Converged {
		t.Fatal("anchored solve did not converge")
	}
	if anchoredRes.Reanchors == 0 {
		t.Fatal("no reanchors recorded")
	}
	// The loose run either errors out, fails to converge, or shows at
	// least as much scalar drift as the anchored run.
	if looseErr == nil && looseRes.Converged &&
		looseRes.Drift.MaxRelRR < anchoredRes.Drift.MaxRelRR &&
		looseRes.Drift.MaxRelPAP < anchoredRes.Drift.MaxRelPAP {
		t.Fatalf("un-anchored run reported less drift (rr %g vs %g, pap %g vs %g)",
			looseRes.Drift.MaxRelRR, anchoredRes.Drift.MaxRelRR,
			looseRes.Drift.MaxRelPAP, anchoredRes.Drift.MaxRelPAP)
	}
}

func TestSolveCallbackEarlyStop(t *testing.T) {
	a := sparse.Poisson2D(8)
	b := vec.New(a.Dim())
	vec.Random(b, 29)
	res, err := Solve(a, b, Options{
		K: 2, Tol: 1e-14,
		Callback: func(it int, _ float64) bool { return it < 4 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 4 {
		t.Fatalf("early stop at 4, got %d", res.Iterations)
	}
}

func TestSolveWarmStart(t *testing.T) {
	a := sparse.Poisson2D(5)
	n := a.Dim()
	xTrue := vec.New(n)
	vec.Random(xTrue, 33)
	b := vec.New(n)
	a.MulVec(b, xTrue)
	res, err := Solve(a, b, Options{K: 2, X0: xTrue, Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 1 {
		t.Fatalf("warm start took %d iterations", res.Iterations)
	}
}

// Property: VRCG solves random SPD systems for random small k.
func TestPropSolveRandomSPD(t *testing.T) {
	f := func(seed uint64, szRaw, kRaw uint8) bool {
		n := int(szRaw)%30 + 8
		k := int(kRaw) % 4
		a := sparse.RandomSPD(n, 4, seed)
		x := vec.New(n)
		vec.Random(x, seed+1)
		b := vec.New(n)
		a.MulVec(b, x)
		res, err := Solve(a, b, Options{K: k, Tol: 1e-9, MaxIter: 30 * n})
		if err != nil || !res.Converged {
			return false
		}
		return res.TrueResidualNorm <= 1e-6*vec.Norm2(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: the recurrence scalars match direct inner products on
// well-conditioned random problems when stabilized by frequent
// re-anchoring (claim C3/C5 exactness up to bounded floating-point
// drift).
func TestPropRecurrenceScalarExactness(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		k := int(kRaw)%5 + 1
		n := 40
		a := sparse.RandomSPD(n, 4, seed)
		b := vec.New(n)
		vec.Random(b, seed+2)
		res, err := Solve(a, b, Options{K: k, Tol: 1e-6, MaxIter: 200, ValidateEvery: 1, ReanchorEvery: 4})
		if err != nil {
			return false
		}
		return res.Drift.MaxRelPAP < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestWindowVsContractionEngines cross-checks the two independent
// realizations of the paper's algebra: the sliding-window scalar
// recurrences (§5, package primary engine) and the coefficient-
// polynomial contraction against a fixed base Gram (§4, equation *).
// Both driven by the same scalar history must produce identical
// (r,r) and (p,Ap) sequences up to roundoff.
func TestWindowVsContractionEngines(t *testing.T) {
	for _, k := range []int{1, 2, 3} {
		a := sparse.Poisson2D(4)
		n := a.Dim()
		r0 := vec.New(n)
		vec.Random(r0, uint64(80+k))

		// Engine 1: families + window.
		fam := NewFamilies(a, r0, k)
		win := NewWindow(k)
		win.InitDirect(fam.R, fam.P)

		// Engine 2: base Gram at iteration 0 + coefficient pairs.
		pows := sparse.PowerApply(a, r0, 2*k+3)
		width := 2*k + 4
		g := BaseGram{
			Mu:    make([]float64, width),
			Nu:    make([]float64, width),
			Omega: make([]float64, width),
		}
		for i := 0; i < width; i++ {
			d := vec.Dot(r0, pows[i])
			g.Mu[i], g.Nu[i], g.Omega[i] = d, d, d
		}
		cr := NewCoeffR()
		cp := NewCoeffP()

		for step := 0; step < k; step++ { // degrees stay within the Gram width
			rrWin, papWin := win.RR(), win.PAP()
			rrCon := g.Contract(cr, cr, 0)
			papCon := g.Contract(cp, cp, 1)
			if relErrT(rrWin, rrCon) > 1e-9 {
				t.Fatalf("k=%d step %d: window rr %g vs contraction %g", k, step, rrWin, rrCon)
			}
			if relErrT(papWin, papCon) > 1e-9 {
				t.Fatalf("k=%d step %d: window pap %g vs contraction %g", k, step, papWin, papCon)
			}

			lambda := rrWin / papWin
			fam.StepR(lambda)
			rrNew := win.PeekRR(lambda)
			alpha := rrNew / rrWin
			fam.StepP(a, alpha)
			topN, topW1, topW2 := fam.DirectTops()
			win.Step(lambda, alpha, topN, topW1, topW2)
			cr, cp = StepCG(cr, cp, lambda, alpha)
		}
	}
}
