package core

import (
	"testing"

	"vrcg/internal/krylov"
	"vrcg/internal/vec"
	"vrcg/precond"
	"vrcg/sparse"
)

func TestResidualReplacementActivates(t *testing.T) {
	a := sparse.Poisson2D(8)
	b := vec.New(a.Dim())
	vec.Random(b, 41)
	res, err := Solve(a, b, Options{K: 2, Tol: 1e-9, ResidualReplaceEvery: 6, ReanchorEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("no convergence with residual replacement")
	}
	if res.Replacements == 0 {
		t.Fatal("no replacements recorded")
	}
}

func TestResidualReplacementTightensTrueResidual(t *testing.T) {
	// Residual replacement ties the recursive residual to the true one;
	// the final true residual should be at least as good as the
	// window-only profile's (which drifts).
	a := sparse.Poisson1D(96)
	b := vec.New(96)
	vec.Random(b, 43)
	loose, errL := Solve(a, b, Options{K: 3, Tol: 1e-10, MaxIter: 3000, WindowOnlyReanchor: true})
	repl, errR := Solve(a, b, Options{K: 3, Tol: 1e-10, MaxIter: 3000, ResidualReplaceEvery: 8})
	if errR != nil {
		t.Fatal(errR)
	}
	if !repl.Converged {
		t.Fatal("replacement run did not converge")
	}
	if errL == nil && loose.Converged && repl.TrueResidualNorm > 10*loose.TrueResidualNorm+1e-13 {
		t.Fatalf("replacement true residual %g worse than loose %g",
			repl.TrueResidualNorm, loose.TrueResidualNorm)
	}
}

func TestSolveJacobiMatchesPCGIterations(t *testing.T) {
	// Diagonal scaling == Jacobi preconditioning: iteration counts track
	// PCG-Jacobi closely.
	a := sparse.RandomSPD(120, 5, 51)
	b := vec.New(120)
	vec.Random(b, 52)

	jac, err := precond.NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	pcg, err := krylov.PCG(a, jac, b, krylov.Options{Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	vr, err := SolveJacobi(a, b, Options{K: 2, Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if !vr.Converged {
		t.Fatal("SolveJacobi did not converge")
	}
	if diff := vr.Iterations - pcg.Iterations; diff < -5 || diff > 5 {
		t.Fatalf("SolveJacobi iterations %d vs PCG-Jacobi %d", vr.Iterations, pcg.Iterations)
	}
	if vr.TrueResidualNorm > 1e-6*vec.Norm2(b) {
		t.Fatalf("true residual %g", vr.TrueResidualNorm)
	}
}

func TestSolveJacobiImprovesOnPlainForBadScaling(t *testing.T) {
	// A badly row-scaled SPD system: diagonal scaling should cut the
	// iteration count substantially versus plain VRCG.
	n := 150
	d := vec.New(n)
	for i := range d {
		d[i] = 1 + 1e4*float64(i%7)/6 // wildly varying diagonal
	}
	base := sparse.TridiagToeplitz(n, 0, -0.45)
	coo := sparse.NewCOO(n)
	for i := 0; i < n; i++ {
		base.ScanRow(i, func(j int, v float64) {
			if i != j {
				coo.Add(i, j, v)
			}
		})
		coo.Add(i, i, d[i])
	}
	a := coo.ToCSR()
	b := vec.New(n)
	vec.Random(b, 53)

	plain, errP := Solve(a, b, Options{K: 2, Tol: 1e-8, MaxIter: 6000})
	scaled, errS := SolveJacobi(a, b, Options{K: 2, Tol: 1e-8, MaxIter: 6000})
	if errS != nil {
		t.Fatal(errS)
	}
	if !scaled.Converged {
		t.Fatal("scaled solve did not converge")
	}
	if errP == nil && plain.Converged && scaled.Iterations >= plain.Iterations {
		t.Fatalf("scaling did not help: %d vs %d iterations", scaled.Iterations, plain.Iterations)
	}
}

func TestSolveJacobiWarmStart(t *testing.T) {
	a := sparse.Poisson2D(6)
	n := a.Dim()
	xTrue := vec.New(n)
	vec.Random(xTrue, 54)
	b := vec.New(n)
	a.MulVec(b, xTrue)
	res, err := SolveJacobi(a, b, Options{K: 1, X0: xTrue, Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 1 {
		t.Fatalf("warm start took %d iterations", res.Iterations)
	}
}

func TestSolveJacobiRejectsBadInput(t *testing.T) {
	a := sparse.Poisson1D(5)
	if _, err := SolveJacobi(a, vec.New(6), Options{K: 1}); err == nil {
		t.Fatal("expected dimension error")
	}
	coo := sparse.NewCOO(2)
	coo.Add(0, 0, 1)
	coo.Add(1, 1, -1)
	if _, err := SolveJacobi(coo.ToCSR(), vec.New(2), Options{K: 1}); err == nil {
		t.Fatal("expected scaling error")
	}
}
