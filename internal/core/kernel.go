package core

import (
	"fmt"
	"math"

	"vrcg/internal/engine"
	"vrcg/internal/vec"
)

// vrcgKernel is the paper's restructured conjugate gradient iteration
// with look-ahead parameter K, as an engine kernel: identical iterates
// to standard CG in exact arithmetic, but with every (r,r) and (p,Ap)
// delivered by the §4/§5 scalar recurrences from inner products
// computed k iterations earlier, one matrix–vector product per
// iteration, and three direct inner products per iteration replenishing
// the window tops.
//
// The Krylov vector families and scalar windows are cached on the
// kernel and rebuilt in place per solve, keyed on (order, K, pool), so
// a warm repeated solve allocates nothing.
type vrcgKernel struct {
	fam *Families
	win *Window
	rr  float64
	// r0 is the initial residual norm of the current solve, the scale
	// the divergence guard in Step measures against; diverged records
	// that the guard fired this solve, which is what obliges the
	// convergence check to verify against the true residual (ordinary
	// periodic replacements do not taint the recursive residual).
	r0       float64
	diverged bool

	// cache key for the families/window.
	n    int
	k    int
	pool *vec.Pool
}

// NewKernel returns the vrcg iteration kernel.
func NewKernel() engine.Kernel { return &vrcgKernel{} }

func (kn *vrcgKernel) Name() string { return "vrcg" }

func (kn *vrcgKernel) resNorm() float64 { return math.Sqrt(math.Max(kn.rr, 0)) }

func (kn *vrcgKernel) Init(run *engine.Run) (float64, error) {
	ws := run.Ws
	n := ws.Dim()
	if run.Cfg.K < 0 {
		return 0, fmt.Errorf("core: look-ahead parameter K = %d must be >= 0: %w", run.Cfg.K, ErrBadOption)
	}
	k := run.Cfg.K
	if run.Cfg.ReanchorEvery == 0 {
		run.Cfg.ReanchorEvery = DefaultReanchorInterval(k)
	}
	run.Res.K = k

	x := ws.Vec(0)
	if run.Cfg.X0 != nil {
		vec.Copy(x, run.Cfg.X0)
	} else {
		vec.Zero(x)
	}
	run.Res.X = x

	// r(0) = b - A x(0), into the arena scratch the families copy from.
	r0 := ws.Vec(1)
	ws.MatVec(run.A, r0, x)
	vec.Sub(r0, run.B, r0)
	run.Res.Stats.MatVecs++
	run.Res.Stats.Flops += engine.MatVecFlops(run.A)

	// Start-up (paper: "After an initial start up"): build the Krylov
	// vector families (k+1 matvecs including the P top) and the scalar
	// windows (6k+6 direct inner products). Warm kernels rebuild the
	// cached families in place.
	if kn.fam == nil || kn.n != n || kn.k != k || kn.pool != ws.Pool() {
		kn.fam = NewFamiliesPool(run.A, r0, k, ws.Pool())
		kn.win = NewWindow(k)
		kn.win.SetPool(ws.Pool())
		kn.n, kn.k, kn.pool = n, k, ws.Pool()
	} else {
		kn.fam.Rebuild(run.A, r0)
	}
	run.Res.Stats.MatVecs += k + 1
	run.Res.Stats.Flops += int64(k+1) * engine.MatVecFlops(run.A)
	kn.win.InitDirect(kn.fam.R, kn.fam.P)
	nDots := (2*k + 1) + (2*k + 2) + (2*k + 3)
	run.Res.Stats.InnerProducts += nDots
	run.Res.Stats.Flops += int64(nDots) * 2 * int64(n)

	kn.rr = kn.win.RR()
	kn.r0 = kn.resNorm()
	kn.diverged = false
	return kn.r0, nil
}

// divergenceGuard is the factor over the initial residual norm past
// which the recurrences are declared divergent and the iteration
// restarted from the true residual. Well-behaved runs never approach
// it (CG residuals oscillate, but not four orders of magnitude above
// their start); a restart at this scale is still fully recoverable in
// float64.
const divergenceGuard = 1e4

// restart abandons the drifted recurrence state entirely: the residual
// is recomputed as b - A x, the direction reset to it (a CG restart —
// conjugacy is already lost), the families rebuilt, and the windows
// re-anchored directly. This is the emergency form of van der Vorst–Ye
// residual replacement, for runs whose recursive residual has left the
// trust region.
func (kn *vrcgKernel) restart(run *engine.Run) {
	ws, res, fam := run.Ws, run.Res, kn.fam
	ws.MatVec(run.A, fam.R[0], res.X)
	vec.Sub(fam.R[0], run.B, fam.R[0])
	res.Stats.MatVecs++
	res.Stats.Flops += engine.MatVecFlops(run.A)
	fam.Rebuild(run.A, fam.R[0])
	res.Stats.MatVecs += kn.k + 1
	res.Stats.Flops += int64(kn.k+1) * engine.MatVecFlops(run.A)
	reanchor(run.A, res, fam, kn.win, false)
	res.Replacements++
	kn.rr = kn.win.RR()
	// Rebase the guard on the restarted residual: on systems whose
	// residual legitimately sits far above its starting norm, the old
	// scale would re-trigger a restart every Step.
	if rn := kn.resNorm(); rn > kn.r0 {
		kn.r0 = rn
	}
}

// Residual sharpens the recurrence (r,r) before the driver trusts it
// for a convergence decision: the recurrence value may have drifted, so
// a value at or under the threshold is verified with one direct inner
// product and the window resynchronized from it. Runs that needed a
// divergence restart get the stronger check: their recursive residual
// vector itself is suspect, so convergence is confirmed against the
// true residual b - A x (one matvec, only at candidate-convergence
// iterations) — a detached recurrence can otherwise report a tiny
// (r,r) while the iterate is nowhere near the solution.
func (kn *vrcgKernel) Residual(run *engine.Run) float64 {
	rn := kn.resNorm()
	if rn <= run.Threshold {
		rrDirect := run.Ws.Dot(kn.fam.Residual(), kn.fam.Residual())
		run.Res.FallbackDots++
		run.Res.Stats.InnerProducts++
		run.Res.Stats.Flops += 2 * int64(run.Ws.Dim())
		kn.win.M[0] = rrDirect
		kn.rr = rrDirect
		rn = kn.resNorm()
		if rn <= run.Threshold && kn.diverged {
			// restart recomputes r = b - A x and re-anchors; if the
			// true residual really is converged this is the last act
			// of the solve, and if not, iteration continues honestly.
			kn.restart(run)
			rn = kn.resNorm()
		}
	}
	return rn
}

func (kn *vrcgKernel) Step(run *engine.Run) error {
	ws, res := run.Ws, run.Res
	n := int64(ws.Dim())
	fam, win := kn.fam, kn.win
	k := kn.k

	// Divergence guard: a recurrence residual far above the solve's
	// starting scale (or non-finite) means the scalar recurrences have
	// detached from the vectors they describe — re-anchoring can no
	// longer help, because the recursive residual itself is wrong.
	// Restart from the true residual while the iterate is still
	// recoverable.
	if rn := kn.resNorm(); math.IsNaN(rn) || rn > divergenceGuard*kn.r0 {
		kn.diverged = true
		kn.restart(run)
	}

	pap := win.PAP()
	if pap <= 0 || math.IsNaN(pap) {
		// Drift symptom: fall back to the direct inner product
		// (A p is family member P[1], so this is one dot).
		pap = ws.Dot(fam.Direction(), fam.AP())
		res.FallbackDots++
		res.Stats.InnerProducts++
		res.Stats.Flops += 2 * n
		win.W[1] = pap
	}
	if pap <= 0 || math.IsNaN(pap) {
		// The direct product failed too, meaning the vector families
		// themselves drifted (P[1] is no longer A p). Emergency
		// recovery: rebuild the families from the live r and p and
		// re-anchor the windows. Only if the genuinely recomputed
		// (p, A p) is still non-positive is the operator indefinite.
		reanchor(run.A, res, fam, win, true)
		kn.rr = win.RR()
		pap = win.PAP()
		if pap <= 0 || math.IsNaN(pap) {
			// A degenerate direction with the residual already at the
			// threshold is convergence the recurrence never noticed
			// (the iterate can land exactly on the solution, leaving
			// p = 0 and 0/0 scalars), not indefiniteness: stop and let
			// the driver's exit re-check classify it.
			if kn.resNorm() <= run.Threshold {
				run.Stop()
				return nil
			}
			return fmt.Errorf("core: (p,Ap) = %g at iteration %d: %w",
				pap, res.Iterations, ErrIndefinite)
		}
	}
	lambda := kn.rr / pap

	// Iterate update (uses the live direction P[0] before StepP).
	ws.Axpy(lambda, fam.Direction(), res.X)
	res.Stats.VectorUpdates++
	res.Stats.Flops += 2 * n

	// Residual-family half step, then the recurrence value of (r',r').
	fam.StepR(lambda)
	res.Stats.VectorUpdates += k + 1
	res.Stats.Flops += int64(k+1) * 2 * n

	rrNew := win.PeekRR(lambda)
	fellBack := false
	if rrNew <= 0 || math.IsNaN(rrNew) {
		// Drift pushed the recurrence nonpositive (typically at
		// convergence); fall back to one direct inner product.
		rrNew = ws.Dot(fam.Residual(), fam.Residual())
		fellBack = true
		res.FallbackDots++
		res.Stats.InnerProducts++
		res.Stats.Flops += 2 * n
	}
	if kn.rr == 0 {
		return fmt.Errorf("core: (r,r) vanished at iteration %d: %w", res.Iterations, ErrBreakdown)
	}
	alpha := rrNew / kn.rr

	// Direction-family half step: 2k+2 axpys + the single matvec.
	fam.StepP(run.A, alpha)
	res.Stats.VectorUpdates += k + 1
	res.Stats.Flops += int64(k+1) * 2 * n
	res.Stats.MatVecs++
	res.Stats.Flops += engine.MatVecFlops(run.A)

	// Window advance: all-but-top entries by scalar recurrence, tops
	// by the three direct inner products of §5.
	topN, topW1, topW2 := fam.DirectTops()
	res.Stats.InnerProducts += 3
	res.Stats.Flops += 3 * 2 * n
	win.Step(lambda, alpha, topN, topW1, topW2)
	res.Stats.Flops += int64(6*(2*k+1) + 4) // scalar recurrence work
	if fellBack {
		win.M[0] = rrNew // resynchronize with the direct value
	}

	kn.rr = win.RR()
	res.Iterations++

	if run.Cfg.ValidateEvery > 0 && res.Iterations%run.Cfg.ValidateEvery == 0 {
		validateDrift(res, fam, kn.rr, win.PAP())
	}
	if run.Cfg.ResidualReplaceEvery > 0 && res.Iterations%run.Cfg.ResidualReplaceEvery == 0 {
		// Residual replacement: overwrite the recursive residual
		// with b - A x, then rebuild everything from it.
		ws.MatVec(run.A, fam.R[0], res.X)
		vec.Sub(fam.R[0], run.B, fam.R[0])
		res.Stats.MatVecs++
		res.Stats.Flops += engine.MatVecFlops(run.A)
		// The direction keeps its recursive value (replacing p too
		// would discard conjugacy); powers and windows rebuild.
		reanchor(run.A, res, fam, win, true)
		res.Replacements++
		kn.rr = win.RR()
	} else if run.Cfg.ReanchorEvery > 0 && res.Iterations%run.Cfg.ReanchorEvery == 0 {
		reanchor(run.A, res, fam, win, !run.Cfg.WindowOnlyReanchor)
		kn.rr = win.RR()
	}

	run.Record(kn.resNorm())
	run.Callback(res.Iterations, kn.resNorm())
	return nil
}

func (kn *vrcgKernel) Finish(run *engine.Run) {
	// True residual at exit, into the start-up scratch.
	tr := run.Ws.Vec(1)
	run.Ws.MatVec(run.A, tr, run.Res.X)
	vec.Sub(tr, run.B, tr)
	run.Res.Stats.MatVecs++
	run.Res.Stats.Flops += engine.MatVecFlops(run.A)
	run.Res.TrueResidualNorm = vec.Norm2(tr)
}
