package sstep

import (
	"fmt"
	"math"

	"vrcg/internal/engine"
	"vrcg/internal/vec"
)

// coeffVec represents a vector symbolically as a polynomial combination
// of the block base (rho over A^i r, pi over A^i p). The views rho/pi
// are prefixes of the fixed backing arrays rhoB/piB (capacity s+2 — the
// degrees grow by at most one per step within a block), so the
// coefficient algebra runs without allocation.
type coeffVec struct {
	rho, pi   []float64
	rhoB, piB []float64
}

// axpyCoeffInto computes x + sc*(0^shift ++ y) into dst's backing array
// and returns the re-sliced result, reproducing the historical axpyC /
// shiftUp algebra exactly (including the empty-operand length rules).
// dst may share backing with x, or with y when shift is zero: every
// position i reads only x[i] and y[i-shift] before writing, and the
// aliased call sites are index-aligned.
func axpyCoeffInto(dst, x, y []float64, sc float64, shift int) []float64 {
	if len(y) == 0 {
		shift = 0
	}
	ln := len(x)
	if len(y) > 0 && len(y)+shift > ln {
		ln = len(y) + shift
	}
	out := dst[:ln]
	for i := 0; i < ln; i++ {
		var xi, yi float64
		if i < len(x) {
			xi = x[i]
		}
		if i >= shift && i-shift < len(y) {
			yi = y[i-shift]
		}
		out[i] = xi + sc*yi
	}
	return out
}

// sstepKernel is Chronopoulos–Gear s-step CG as an engine kernel: each
// Step executes one block — build the monomial block basis
// {p, Ap, ..., A^{s+1}p, r, Ar, ..., A^{s}r}, compute all Gram inner
// products of the block in one batched reduction, run s CG steps whose
// scalars are contractions of that Gram data (the identical algebra as
// the paper's equation (*), restricted to one block), and apply the
// accumulated coefficient updates to the vectors. Numerically the
// monomial basis limits practical block sizes to s <~ 5, exactly the
// historical experience with the method.
//
// All block state — power families, Gram sequences, coefficient
// buffers — is cached on the kernel keyed by the block size, so a warm
// repeated solve allocates nothing.
type sstepKernel struct {
	s int

	x, r, p, upd vec.Vector
	rPow, pPow   []vec.Vector

	mu, nu, om     []float64
	cr, cp, cx, ct coeffVec
	stepRRs        []float64

	rr float64
}

// NewKernel returns the sstep iteration kernel.
func NewKernel() engine.Kernel { return &sstepKernel{} }

func (kn *sstepKernel) Name() string { return "sstep" }

func (kn *sstepKernel) resNorm() float64 { return math.Sqrt(math.Max(kn.rr, 0)) }

func newCoeffVec(cap int) coeffVec {
	return coeffVec{rhoB: make([]float64, cap), piB: make([]float64, cap)}
}

func (kn *sstepKernel) Init(run *engine.Run) (float64, error) {
	if run.Cfg.S < 1 {
		return 0, fmt.Errorf("sstep: block size S = %d must be >= 1: %w", run.Cfg.S, ErrBadOption)
	}
	s := run.Cfg.S
	ws := run.Ws
	kn.x, kn.r, kn.p, kn.upd = ws.Vec(0), ws.Vec(1), ws.Vec(2), ws.Vec(3)

	// Power families: rPow[i] = A^i r (i = 0..s), pPow[i] = A^i p
	// (i = 0..s+1), as views of arena vectors rebuilt each solve.
	kn.rPow = kn.rPow[:0]
	for i := 0; i <= s; i++ {
		kn.rPow = append(kn.rPow, ws.Vec(4+i))
	}
	kn.pPow = kn.pPow[:0]
	for i := 0; i <= s+1; i++ {
		kn.pPow = append(kn.pPow, ws.Vec(5+s+i))
	}
	if kn.s != s {
		kn.mu = make([]float64, 2*s+1)
		kn.nu = make([]float64, 2*s+2)
		kn.om = make([]float64, 2*s+3)
		kn.cr = newCoeffVec(s + 2)
		kn.cp = newCoeffVec(s + 2)
		kn.cx = newCoeffVec(s + 2)
		kn.ct = newCoeffVec(s + 2)
		kn.stepRRs = make([]float64, 0, s)
		kn.s = s
	}

	if run.Cfg.X0 != nil {
		vec.Copy(kn.x, run.Cfg.X0)
	} else {
		vec.Zero(kn.x)
	}
	run.Res.X = kn.x

	ws.MatVec(run.A, kn.r, kn.x)
	vec.Sub(kn.r, run.B, kn.r)
	run.Res.Stats.MatVecs++
	run.Res.Stats.Flops += engine.MatVecFlops(run.A)
	vec.Copy(kn.p, kn.r)

	kn.rr = ws.Dot(kn.r, kn.r)
	run.Res.Stats.InnerProducts++
	run.Res.Stats.Flops += 2 * int64(ws.Dim())
	return kn.resNorm(), nil
}

func (kn *sstepKernel) Residual(*engine.Run) float64 { return kn.resNorm() }

// contract evaluates (x, A^shift y) over the block Gram sequences using
// symmetry — precisely the paper's equation (*) restricted to the block
// base.
func (kn *sstepKernel) contract(x, y coeffVec, shift int) float64 {
	var t float64
	for i, xv := range x.rho {
		if xv == 0 {
			continue
		}
		for j, yv := range y.rho {
			t += xv * yv * kn.mu[i+j+shift]
		}
		for j, yv := range y.pi {
			t += xv * yv * kn.nu[i+j+shift]
		}
	}
	for i, xv := range x.pi {
		if xv == 0 {
			continue
		}
		for j, yv := range y.rho {
			t += xv * yv * kn.nu[i+j+shift]
		}
		for j, yv := range y.pi {
			t += xv * yv * kn.om[i+j+shift]
		}
	}
	return t
}

// applyCombo materializes a coefficient combination over the power
// families into dst — the s-step economy: no per-step matvecs, just
// combination sweeps.
func (kn *sstepKernel) applyCombo(run *engine.Run, dst vec.Vector, c coeffVec) {
	vec.Zero(dst)
	for i, v := range c.rho {
		run.Ws.Axpy(v, kn.rPow[i], dst)
	}
	for i, v := range c.pi {
		run.Ws.Axpy(v, kn.pPow[i], dst)
	}
	run.Res.Stats.VectorUpdates += len(c.rho) + len(c.pi)
	run.Res.Stats.Flops += int64(len(c.rho)+len(c.pi)) * 2 * int64(run.Ws.Dim())
}

// Step executes one s-step block.
func (kn *sstepKernel) Step(run *engine.Run) error {
	ws, res := run.Ws, run.Res
	n := int64(ws.Dim())
	s := kn.s

	// Build block Krylov powers: rPow[0..s], pPow[0..s+1].
	vec.Copy(kn.rPow[0], kn.r)
	for i := 1; i <= s; i++ {
		ws.MatVec(run.A, kn.rPow[i], kn.rPow[i-1])
	}
	vec.Copy(kn.pPow[0], kn.p)
	for i := 1; i <= s+1; i++ {
		ws.MatVec(run.A, kn.pPow[i], kn.pPow[i-1])
	}
	res.Stats.MatVecs += 2*s + 1
	res.Stats.Flops += int64(2*s+1) * engine.MatVecFlops(run.A)

	// One batched reduction: Gram sequences to index 2s+2.
	for i := range kn.mu {
		x, y := i/2, i-i/2
		kn.mu[i] = ws.Dot(kn.rPow[x], kn.rPow[y])
	}
	for i := range kn.nu {
		x := i / 2
		if x > s {
			x = s
		}
		kn.nu[i] = ws.Dot(kn.rPow[x], kn.pPow[i-x])
	}
	for i := range kn.om {
		x, y := i/2, i-i/2
		kn.om[i] = ws.Dot(kn.pPow[x], kn.pPow[y])
	}
	res.Stats.InnerProducts += len(kn.mu) + len(kn.nu) + len(kn.om)
	res.Stats.Flops += int64(len(kn.mu)+len(kn.nu)+len(kn.om)) * 2 * n

	// s CG steps by coefficient recurrences over (rho, pi) relative to
	// the block base, contracted against the Gram data. cr/cp start as
	// the base vectors themselves; cx accumulates sum_j lambda_j *
	// (coefficients of p_j) — the whole block's solution update as one
	// linear combination.
	kn.cr.rho = kn.cr.rhoB[:1]
	kn.cr.rho[0] = 1
	kn.cr.pi = kn.cr.piB[:0]
	kn.cp.rho = kn.cp.rhoB[:0]
	kn.cp.pi = kn.cp.piB[:1]
	kn.cp.pi[0] = 1
	kn.cx.rho = kn.cx.rhoB[:0]
	kn.cx.pi = kn.cx.piB[:0]
	kn.stepRRs = kn.stepRRs[:0]

	blockRR := kn.rr
	steps := 0
	for j := 0; j < s; j++ {
		pap := kn.contract(kn.cp, kn.cp, 1)
		if pap <= 0 || math.IsNaN(pap) {
			break
		}
		lambda := blockRR / pap
		kn.cx.rho = axpyCoeffInto(kn.cx.rhoB, kn.cx.rho, kn.cp.rho, lambda, 0)
		kn.cx.pi = axpyCoeffInto(kn.cx.piB, kn.cx.pi, kn.cp.pi, lambda, 0)
		// crNew = cr - lambda * A·cp, staged in the scratch pair so a
		// breakdown leaves cr (and the applied update below) intact.
		kn.ct.rho = axpyCoeffInto(kn.ct.rhoB, kn.cr.rho, kn.cp.rho, -lambda, 1)
		kn.ct.pi = axpyCoeffInto(kn.ct.piB, kn.cr.pi, kn.cp.pi, -lambda, 1)
		rrNew := kn.contract(kn.ct, kn.ct, 0)
		if rrNew < 0 || math.IsNaN(rrNew) {
			break
		}
		alpha := rrNew / blockRR
		kn.cr, kn.ct = kn.ct, kn.cr
		kn.cp.rho = axpyCoeffInto(kn.cp.rhoB, kn.cr.rho, kn.cp.rho, alpha, 0)
		kn.cp.pi = axpyCoeffInto(kn.cp.piB, kn.cr.pi, kn.cp.pi, alpha, 0)
		blockRR = rrNew
		kn.stepRRs = append(kn.stepRRs, rrNew)
		steps++
		if math.Sqrt(math.Max(rrNew, 0)) <= run.Threshold || res.Iterations+steps >= run.Cfg.MaxIter {
			break
		}
	}
	if steps == 0 {
		return fmt.Errorf("sstep: block scalar breakdown at iteration %d (block size %d too large for this conditioning): %w",
			res.Iterations, s, ErrBreakdown)
	}

	// Apply the block as linear combinations of the power families.
	kn.applyCombo(run, kn.upd, kn.cx)
	vec.Add(kn.x, kn.x, kn.upd)
	kn.applyCombo(run, kn.r, kn.cr)
	kn.applyCombo(run, kn.upd, kn.cp)
	vec.Copy(kn.p, kn.upd)

	res.Blocks++
	for _, v := range kn.stepRRs {
		kn.rr = v
		run.Tick(math.Sqrt(math.Max(v, 0)))
	}
	// Direct residual resync once per block bounds the recurrence drift
	// (the block-boundary stabilization the literature uses). When the
	// block basis went numerically rank-deficient early, the next block
	// simply restarts from the repaired r, p.
	kn.rr = ws.Dot(kn.r, kn.r)
	res.Stats.InnerProducts++
	res.Stats.Flops += 2 * n
	return nil
}

func (kn *sstepKernel) Finish(run *engine.Run) {
	run.Ws.MatVec(run.A, kn.upd, kn.x)
	vec.Sub(kn.upd, run.B, kn.upd)
	run.Res.Stats.MatVecs++
	run.Res.Stats.Flops += engine.MatVecFlops(run.A)
	run.Res.TrueResidualNorm = vec.Norm2(kn.upd)
}
