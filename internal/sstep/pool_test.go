package sstep

import (
	"runtime"
	"testing"

	"vrcg/internal/vec"
	"vrcg/sparse"
)

// TestSolvePooledMatchesSerial: routing the s-step blocks through the
// worker-pool engine preserves convergence and the solution.
func TestSolvePooledMatchesSerial(t *testing.T) {
	a := sparse.Poisson2D(14)
	b := vec.New(a.Dim())
	vec.Random(b, 61)
	ref, err := Solve(a, b, Options{S: 4, Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, runtime.GOMAXPROCS(0)} {
		pool := vec.NewPoolMinChunk(w, 32)
		res, err := Solve(a, b, Options{S: 4, Tol: 1e-9, Pool: pool})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !res.Converged {
			t.Fatalf("workers=%d: pooled s-step did not converge", w)
		}
		if !vec.EqualTol(res.X, ref.X, 1e-6) {
			t.Fatalf("workers=%d: pooled solution differs", w)
		}
		pool.Close()
	}
}
