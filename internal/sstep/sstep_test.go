package sstep

import (
	"errors"
	"testing"
	"testing/quick"

	"vrcg/internal/krylov"
	"vrcg/internal/vec"
	"vrcg/sparse"
)

func TestSolveS1MatchesCG(t *testing.T) {
	a := sparse.Poisson2D(6)
	n := a.Dim()
	b := vec.New(n)
	vec.Random(b, 1)
	cg, err := krylov.CG(a, b, krylov.Options{Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := Solve(a, b, Options{S: 1, Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if !ss.Converged {
		t.Fatal("s=1 did not converge")
	}
	if !vec.EqualTol(ss.X, cg.X, 1e-6) {
		t.Fatal("s=1 solution differs from CG")
	}
	// Iteration counts agree closely (same method, batched scalars).
	if diff := ss.Iterations - cg.Iterations; diff < -2 || diff > 2 {
		t.Fatalf("s=1 iterations %d vs CG %d", ss.Iterations, cg.Iterations)
	}
}

func TestSolveBlocksS4(t *testing.T) {
	a := sparse.Poisson2D(7)
	n := a.Dim()
	xTrue := vec.New(n)
	vec.Random(xTrue, 2)
	b := vec.New(n)
	a.MulVec(b, xTrue)
	res, err := Solve(a, b, Options{S: 4, Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("s=4 did not converge (res %g)", res.ResidualNorm)
	}
	if res.TrueResidualNorm > 1e-5*vec.Norm2(b) {
		t.Fatalf("true residual %g", res.TrueResidualNorm)
	}
	if res.Blocks == 0 || res.Blocks > res.Iterations {
		t.Fatalf("blocks = %d for %d iterations", res.Blocks, res.Iterations)
	}
	// Block economy: roughly ceil(iterations/s) blocks.
	if res.Blocks > res.Iterations/4+3 {
		t.Fatalf("too many blocks: %d for %d iterations", res.Blocks, res.Iterations)
	}
}

func TestSolveConvergenceAcrossS(t *testing.T) {
	a := sparse.TridiagToeplitz(128, 4.2, -1) // kappa ~ 2.6
	b := vec.New(128)
	vec.Random(b, 3)
	base, err := Solve(a, b, Options{S: 1, Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []int{2, 3, 5} {
		res, err := Solve(a, b, Options{S: s, Tol: 1e-8})
		if err != nil {
			t.Fatalf("s=%d: %v", s, err)
		}
		if !res.Converged {
			t.Fatalf("s=%d did not converge", s)
		}
		// Mathematically identical iterations: counts stay close.
		if diff := res.Iterations - base.Iterations; diff < -s-2 || diff > s+2 {
			t.Fatalf("s=%d iterations %d vs s=1 %d", s, res.Iterations, base.Iterations)
		}
	}
}

func TestSolveMatvecEconomy(t *testing.T) {
	// ~(2s+1)/s matvecs per iteration, far fewer reductions per
	// iteration than CG's 2.
	a := sparse.TridiagToeplitz(96, 4.2, -1)
	b := vec.New(96)
	vec.Random(b, 4)
	s := 4
	res, err := Solve(a, b, Options{S: s, Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("no convergence")
	}
	perIter := float64(res.Stats.MatVecs) / float64(res.Iterations)
	if perIter > float64(2*s+1)/float64(s)+1 {
		t.Fatalf("matvecs per iteration %.2f too high", perIter)
	}
	// Reductions: one batch of ~6s+6 per block + one resync per block.
	batches := float64(res.Stats.InnerProducts) / float64(res.Blocks)
	if batches > float64(6*s+8) {
		t.Fatalf("inner products per block %.1f too high", batches)
	}
}

func TestSolveZeroRHS(t *testing.T) {
	a := sparse.Poisson1D(10)
	res, err := Solve(a, vec.New(10), Options{S: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations != 0 {
		t.Fatalf("zero rhs: converged=%v iters=%d", res.Converged, res.Iterations)
	}
}

func TestSolveRejectsBadArguments(t *testing.T) {
	a := sparse.Poisson1D(5)
	if _, err := Solve(a, vec.New(6), Options{S: 2}); err == nil {
		t.Fatal("expected dimension error")
	}
	if _, err := Solve(a, vec.New(5), Options{S: 0}); err == nil {
		t.Fatal("expected S error")
	}
	if _, err := Solve(a, vec.New(5), Options{S: 2, X0: vec.New(3)}); err == nil {
		t.Fatal("expected x0 error")
	}
}

func TestSolveHistoryRecorded(t *testing.T) {
	a := sparse.Poisson2D(5)
	b := vec.New(a.Dim())
	vec.Random(b, 7)
	res, err := Solve(a, b, Options{S: 3, Tol: 1e-8, RecordHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) < res.Iterations {
		t.Fatalf("history %d entries for %d iterations", len(res.History), res.Iterations)
	}
	last := res.History[len(res.History)-1]
	if last >= res.History[0] {
		t.Fatal("no recorded residual reduction")
	}
}

func TestLargeSBreaksDownGracefully(t *testing.T) {
	// On an ill-conditioned problem a large monomial block must either
	// converge (lucky) or fail with ErrBreakdown — never hang or panic.
	a := sparse.Poisson1D(256) // kappa ~ 2.7e4
	b := vec.New(256)
	vec.Random(b, 8)
	res, err := Solve(a, b, Options{S: 12, Tol: 1e-9, MaxIter: 3000})
	if err != nil {
		if !errors.Is(err, krylov.ErrBreakdown) {
			t.Fatalf("unexpected error type: %v", err)
		}
		return
	}
	_ = res // converged or hit MaxIter — both acceptable
}

func TestWarmStart(t *testing.T) {
	a := sparse.Poisson2D(5)
	n := a.Dim()
	xTrue := vec.New(n)
	vec.Random(xTrue, 9)
	b := vec.New(n)
	a.MulVec(b, xTrue)
	res, err := Solve(a, b, Options{S: 3, X0: xTrue, Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 1 {
		t.Fatalf("warm start took %d iterations", res.Iterations)
	}
}

// Property: s-step solves random well-conditioned SPD systems for small s.
func TestPropSolveRandomSPD(t *testing.T) {
	f := func(seed uint64, sRaw uint8) bool {
		s := int(sRaw)%4 + 1
		n := 40
		a := sparse.RandomSPD(n, 4, seed)
		x := vec.New(n)
		vec.Random(x, seed+1)
		b := vec.New(n)
		a.MulVec(b, x)
		res, err := Solve(a, b, Options{S: s, Tol: 1e-8, MaxIter: 30 * n})
		if err != nil || !res.Converged {
			return false
		}
		return res.TrueResidualNorm <= 1e-5*vec.Norm2(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
