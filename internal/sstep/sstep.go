// Package sstep implements Chronopoulos–Gear s-step conjugate gradients
// (1989), the first published successor of the paper's restructuring
// idea: s CG iterations are blocked together, all 2s+1 inner products of
// a block are computed in one batched reduction, and the step scalars
// within the block come from scalar recurrences over that Gram data.
//
// The package exists as a comparison point (novelty note: s-step CG and
// pipelined CG descend directly from the paper): it amortizes the
// summation fan-in across a block but does not hide it, whereas the
// paper's look-ahead pipelines the fan-in behind k full iterations.
package sstep

import (
	"fmt"
	"math"

	"vrcg/internal/krylov"
	"vrcg/internal/vec"
	"vrcg/sparse"
)

// Options configures an s-step solve.
type Options struct {
	// S is the block size (>= 1). S = 1 reduces to standard CG.
	S int
	// MaxIter bounds the iteration count; 0 means 10*n.
	MaxIter int
	// Tol is the relative residual tolerance; 0 means 1e-10.
	Tol float64
	// X0 is the initial guess; nil means zero.
	X0 vec.Vector
	// RecordHistory enables Result.History.
	RecordHistory bool
	// Callback, when non-nil, is invoked after each CG step (including
	// the steps inside a block) with the iteration number and that
	// step's recurrence residual norm; returning false stops the solve
	// at the end of the current block.
	Callback func(iter int, resNorm float64) bool
	// Pool, when non-nil, routes the block-basis matvecs, the batched
	// Gram inner products, and the combination axpys through the shared
	// worker-pool execution engine. Nil keeps the serial kernels.
	Pool *vec.Pool
}

// pdot and paxpy shorthand the shared pool-or-serial dispatch helpers.
func pdot(p *vec.Pool, x, y vec.Vector) float64 { return vec.PoolDot(p, x, y) }

func paxpy(p *vec.Pool, alpha float64, x, y vec.Vector) { vec.PoolAxpy(p, alpha, x, y) }

func matvecFlops(a sparse.Matrix) int64 {
	if sp, ok := a.(sparse.Sparse); ok {
		return 2 * int64(sp.NNZ())
	}
	n := int64(a.Dim())
	return 2 * n * n
}

// Result reports an s-step solve.
type Result struct {
	X                vec.Vector
	Iterations       int
	Blocks           int
	Converged        bool
	ResidualNorm     float64
	TrueResidualNorm float64
	History          []float64
	Stats            krylov.Stats
}

// Solve runs s-step CG on the SPD system A x = b.
//
// Each block starts from the current residual r and direction p, builds
// the monomial block basis {p, Ap, ..., A^{s}p, r, Ar, ..., A^{s-1}r}
// implicitly through the same coefficient algebra as the paper's
// equation (*), executes s CG steps whose scalars are contractions of
// one batch of base inner products, and applies the accumulated
// coefficient updates to the vectors. Numerically the monomial basis
// limits practical block sizes to s <~ 5, exactly the historical
// experience with the method.
func Solve(a sparse.Matrix, b vec.Vector, o Options) (*Result, error) {
	if a.Dim() != len(b) {
		return nil, fmt.Errorf("sstep: matrix order %d but rhs length %d: %w", a.Dim(), len(b), sparse.ErrDim)
	}
	if o.S < 1 {
		return nil, fmt.Errorf("sstep: block size S = %d must be >= 1: %w", o.S, krylov.ErrBadOption)
	}
	if o.X0 != nil && len(o.X0) != a.Dim() {
		return nil, fmt.Errorf("sstep: x0 length %d for order %d: %w", len(o.X0), a.Dim(), sparse.ErrDim)
	}
	n := a.Dim()
	if o.MaxIter == 0 {
		o.MaxIter = 10 * n
	}
	if o.Tol == 0 {
		o.Tol = 1e-10
	}
	s := o.S

	res := &Result{}
	if o.X0 != nil {
		res.X = vec.Clone(o.X0)
	} else {
		res.X = vec.New(n)
	}
	r := vec.New(n)
	sparse.PooledMulVec(a, o.Pool, r, res.X)
	vec.Sub(r, b, r)
	res.Stats.MatVecs++
	res.Stats.Flops += matvecFlops(a)
	p := vec.Clone(r)

	bnorm := vec.Norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}
	threshold := o.Tol * bnorm

	rr := pdot(o.Pool, r, r)
	res.Stats.InnerProducts++
	res.Stats.Flops += 2 * int64(n)
	record := func() {
		if o.RecordHistory {
			res.History = append(res.History, math.Sqrt(math.Max(rr, 0)))
		}
	}
	record()

	// Work vectors for the block basis: powers of A applied to r and p.
	// rPow[i] = A^i r, pPow[i] = A^i p with i = 0..2s (enough for Gram
	// indices to 4s when split by symmetry — we keep it simple and
	// compute powers to 2s directly, 2 matvecs per basis index beyond
	// what a production version would need; the Stats reflect the
	// actual algorithm's count below). The buffers are allocated once
	// per solve and refilled each block.
	rPow := make([]vec.Vector, s+1)
	pPow := make([]vec.Vector, s+2)
	for i := range rPow {
		rPow[i] = vec.New(n)
	}
	for i := range pPow {
		pPow[i] = vec.New(n)
	}
	mu := make([]float64, 2*s+1)
	nu := make([]float64, 2*s+2)
	om := make([]float64, 2*s+3)
	upd := vec.New(n)

	for res.Iterations < o.MaxIter {
		if math.Sqrt(math.Max(rr, 0)) <= threshold {
			res.Converged = true
			break
		}
		// Build block Krylov powers: rPow[0..s], pPow[0..s+1].
		vec.Copy(rPow[0], r)
		for i := 1; i <= s; i++ {
			sparse.PooledMulVec(a, o.Pool, rPow[i], rPow[i-1])
		}
		vec.Copy(pPow[0], p)
		for i := 1; i <= s+1; i++ {
			sparse.PooledMulVec(a, o.Pool, pPow[i], pPow[i-1])
		}
		res.Stats.MatVecs += 2*s + 1
		res.Stats.Flops += int64(2*s+1) * matvecFlops(a)

		// One batched reduction: Gram sequences to index 2s+2.
		for i := range mu {
			x, y := i/2, i-i/2
			mu[i] = pdot(o.Pool, rPow[x], rPow[y])
		}
		for i := range nu {
			x := i / 2
			if x > s {
				x = s
			}
			nu[i] = pdot(o.Pool, rPow[x], pPow[i-x])
		}
		for i := range om {
			x, y := i/2, i-i/2
			om[i] = pdot(o.Pool, pPow[x], pPow[y])
		}
		res.Stats.InnerProducts += len(mu) + len(nu) + len(om)
		res.Stats.Flops += int64(len(mu)+len(nu)+len(om)) * 2 * int64(n)

		// s CG steps by coefficient recurrences over (rho, pi) relative
		// to the block base, contracted against the Gram data — the
		// identical algebra as the paper's (*), restricted to one block.
		type coeff struct{ rho, pi []float64 }
		cr := coeff{rho: []float64{1}}
		cp := coeff{pi: []float64{1}}
		contract := func(x, y coeff, shift int) float64 {
			var t float64
			for i, xv := range x.rho {
				if xv == 0 {
					continue
				}
				for j, yv := range y.rho {
					t += xv * yv * mu[i+j+shift]
				}
				for j, yv := range y.pi {
					t += xv * yv * nu[i+j+shift]
				}
			}
			for i, xv := range x.pi {
				if xv == 0 {
					continue
				}
				for j, yv := range y.rho {
					t += xv * yv * nu[i+j+shift]
				}
				for j, yv := range y.pi {
					t += xv * yv * om[i+j+shift]
				}
			}
			return t
		}
		shiftUp := func(c []float64) []float64 {
			if len(c) == 0 {
				return nil
			}
			return append([]float64{0}, c...)
		}
		axpyC := func(x, y []float64, sc float64) []float64 {
			ln := len(x)
			if len(y) > ln {
				ln = len(y)
			}
			out := make([]float64, ln)
			copy(out, x)
			for i := range y {
				out[i] += sc * y[i]
			}
			return out
		}

		// cx accumulates sum_j lambda_j * (coefficients of p_j) — the
		// whole block's solution update as one linear combination.
		cx := coeff{}
		stepRRs := make([]float64, 0, s)
		blockRR := rr
		broke := false
		steps := 0
		for j := 0; j < s; j++ {
			pap := contract(cp, cp, 1)
			if pap <= 0 || math.IsNaN(pap) {
				broke = true
				break
			}
			lambda := blockRR / pap
			cx = coeff{
				rho: axpyC(cx.rho, cp.rho, lambda),
				pi:  axpyC(cx.pi, cp.pi, lambda),
			}
			crNew := coeff{
				rho: axpyC(cr.rho, shiftUp(cp.rho), -lambda),
				pi:  axpyC(cr.pi, shiftUp(cp.pi), -lambda),
			}
			rrNew := contract(crNew, crNew, 0)
			if rrNew < 0 || math.IsNaN(rrNew) {
				broke = true
				break
			}
			alpha := rrNew / blockRR
			cp = coeff{
				rho: axpyC(crNew.rho, cp.rho, alpha),
				pi:  axpyC(crNew.pi, cp.pi, alpha),
			}
			cr = crNew
			blockRR = rrNew
			stepRRs = append(stepRRs, rrNew)
			steps++
			if math.Sqrt(math.Max(rrNew, 0)) <= threshold || res.Iterations+steps >= o.MaxIter {
				break
			}
		}
		if steps == 0 {
			return res, fmt.Errorf("sstep: block scalar breakdown at iteration %d (block size %d too large for this conditioning): %w",
				res.Iterations, s, krylov.ErrBreakdown)
		}

		// Apply the block as linear combinations of the power families —
		// the s-step economy: no per-step matvecs, 3 combination sweeps.
		applyCombo := func(dst vec.Vector, c coeff) {
			vec.Zero(dst)
			for i, v := range c.rho {
				paxpy(o.Pool, v, rPow[i], dst)
			}
			for i, v := range c.pi {
				paxpy(o.Pool, v, pPow[i], dst)
			}
			res.Stats.VectorUpdates += len(c.rho) + len(c.pi)
			res.Stats.Flops += int64(len(c.rho)+len(c.pi)) * 2 * int64(n)
		}
		applyCombo(upd, cx)
		vec.Add(res.X, res.X, upd)
		applyCombo(r, cr)
		applyCombo(upd, cp)
		vec.Copy(p, upd)

		base := res.Iterations
		res.Iterations += steps
		res.Blocks++
		stopped := false
		for i, v := range stepRRs {
			rr = v
			record()
			if !stopped && o.Callback != nil && !o.Callback(base+i+1, math.Sqrt(math.Max(rr, 0))) {
				stopped = true
			}
		}
		// Direct residual resync once per block bounds the recurrence
		// drift (the block-boundary stabilization the literature uses).
		rr = pdot(o.Pool, r, r)
		res.Stats.InnerProducts++
		res.Stats.Flops += 2 * int64(n)
		if stopped {
			break
		}
		if broke && math.Sqrt(math.Max(rr, 0)) > threshold && steps < s {
			// The block basis went numerically rank-deficient early;
			// the next block restarts from the repaired r, p.
			continue
		}
	}
	if math.Sqrt(math.Max(rr, 0)) <= threshold {
		res.Converged = true
	}
	res.ResidualNorm = math.Sqrt(math.Max(rr, 0))
	tr := vec.New(n)
	sparse.PooledMulVec(a, o.Pool, tr, res.X)
	vec.Sub(tr, b, tr)
	res.Stats.MatVecs++
	res.Stats.Flops += matvecFlops(a)
	res.TrueResidualNorm = vec.Norm2(tr)
	return res, nil
}
