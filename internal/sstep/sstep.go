// Package sstep implements Chronopoulos–Gear s-step conjugate gradients
// (1989), the first published successor of the paper's restructuring
// idea: s CG iterations are blocked together, all inner products of a
// block are computed in one batched reduction, and the step scalars
// within the block come from scalar recurrences over that Gram data.
//
// The package exists as a comparison point (novelty note: s-step CG and
// pipelined CG descend directly from the paper): it amortizes the
// summation fan-in across a block but does not hide it, whereas the
// paper's look-ahead pipelines the fan-in behind k full iterations.
//
// The method is an engine kernel (internal/engine): this package owns
// the block algebra; the engine driver owns options, convergence,
// callbacks, and history.
package sstep

import (
	"fmt"

	"vrcg/internal/engine"
	"vrcg/internal/krylov"
	"vrcg/internal/vec"
	"vrcg/sparse"
)

// Error sentinels shared with the rest of the solver family.
var (
	ErrBreakdown = engine.ErrBreakdown
	ErrBadOption = engine.ErrBadOption
)

// Options configures an s-step solve: the engine's shared Config, of
// which this package consumes S (the block size, >= 1; S = 1 reduces to
// standard CG) plus the common Tol/MaxIter/X0/RecordHistory/Callback/
// Pool. The callback is invoked after each CG step, including the steps
// inside a block, with that step's recurrence residual norm; returning
// false stops the solve at the end of the current block.
type Options = engine.Config

// Result reports an s-step solve (the canonical engine result; Blocks
// counts the s-step blocks executed).
type Result = engine.Result

// Stats re-exports the shared work counters.
type Stats = krylov.Stats

// Solve runs s-step CG on the SPD system A x = b; see sstepKernel for
// the block mechanics.
func Solve(a sparse.Matrix, b vec.Vector, o Options) (*Result, error) {
	if a.Dim() <= 0 {
		return nil, fmt.Errorf("sstep: operator order %d must be positive: %w", a.Dim(), sparse.ErrDim)
	}
	res := new(Result)
	err := engine.Solve(NewKernel(), engine.NewWorkspace(a.Dim(), o.Pool), a, b, o, res)
	return res, err
}
