// Package trace records and renders execution schedules of the
// restructured CG iteration, reproducing the paper's Figure 1
// ("Principal Data Movement in New CG Algorithm"): vector recurrences
// flow iteration to iteration while the inner products issued on the
// iteration n-k vectors complete just in time for iteration n's scalars.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"vrcg/internal/depth"
)

// Unit identifies the functional unit an event occupies.
type Unit string

// Functional units of the schedule.
const (
	UnitVector Unit = "VEC"    // elementwise vector updates
	UnitMatVec Unit = "MATVEC" // sparse matrix-vector product
	UnitReduce Unit = "REDUCE" // inner-product summation fan-in
	UnitScalar Unit = "SCALAR" // recurrence/coefficient scalar work
)

// Event is one occupied interval on a unit's timeline.
type Event struct {
	Unit  Unit
	Label string
	Iter  int
	Start float64
	End   float64
}

// Trace is an ordered collection of events.
type Trace struct {
	Events []Event
}

// Add appends an event (intervals may overlap across units; that is the
// point of the pipeline).
func (t *Trace) Add(u Unit, label string, iter int, start, end float64) {
	if end < start {
		panic(fmt.Sprintf("trace: event %q ends (%g) before it starts (%g)", label, end, start))
	}
	t.Events = append(t.Events, Event{Unit: u, Label: label, Iter: iter, Start: start, End: end})
}

// Span returns the earliest start and latest end over all events.
func (t *Trace) Span() (float64, float64) {
	if len(t.Events) == 0 {
		return 0, 0
	}
	lo, hi := t.Events[0].Start, t.Events[0].End
	for _, e := range t.Events[1:] {
		if e.Start < lo {
			lo = e.Start
		}
		if e.End > hi {
			hi = e.End
		}
	}
	return lo, hi
}

// Render draws a Gantt chart: one row per unit, time scaled to the given
// width in characters. Concurrent occupancy on one unit stacks onto
// overflow rows.
func (t *Trace) Render(width int) string {
	if width < 20 {
		width = 20
	}
	lo, hi := t.Span()
	if hi == lo {
		hi = lo + 1
	}
	scale := float64(width) / (hi - lo)
	col := func(x float64) int {
		c := int((x - lo) * scale)
		if c >= width {
			c = width - 1
		}
		if c < 0 {
			c = 0
		}
		return c
	}

	units := []Unit{UnitVector, UnitMatVec, UnitReduce, UnitScalar}
	var sb strings.Builder
	fmt.Fprintf(&sb, "time %.0f..%.0f (one column = %.2f units)\n", lo, hi, 1/scale)
	for _, u := range units {
		var evs []Event
		for _, e := range t.Events {
			if e.Unit == u {
				evs = append(evs, e)
			}
		}
		if len(evs) == 0 {
			continue
		}
		sort.Slice(evs, func(i, j int) bool { return evs[i].Start < evs[j].Start })
		// Greedy row packing for overlapping events.
		var rows [][]Event
		for _, e := range evs {
			placed := false
			for ri := range rows {
				last := rows[ri][len(rows[ri])-1]
				if e.Start >= last.End {
					rows[ri] = append(rows[ri], e)
					placed = true
					break
				}
			}
			if !placed {
				rows = append(rows, []Event{e})
			}
		}
		for ri, row := range rows {
			line := []byte(strings.Repeat(".", width))
			for _, e := range row {
				c0, c1 := col(e.Start), col(e.End)
				if c1 <= c0 {
					c1 = c0 + 1
				}
				mark := byte('0' + byte(e.Iter%10))
				for c := c0; c < c1 && c < width; c++ {
					line[c] = mark
				}
			}
			tag := string(u)
			if ri > 0 {
				tag = strings.Repeat(" ", len(tag))
			}
			fmt.Fprintf(&sb, "%-7s|%s|\n", tag, string(line))
		}
	}
	sb.WriteString("(digits are iteration numbers mod 10)\n")
	return sb.String()
}

// VRCGSchedule builds the pipelined schedule of the restructured
// algorithm in the depth cost model: per iteration, the vector family
// update and single matvec; the batch of base inner products issued on
// the iteration's vectors whose fan-in completes k iterations later;
// and the scalar contraction consuming the batch issued k iterations
// earlier. It is the executable form of Figure 1.
func VRCGSchedule(n, d, k, iters int) *Trace {
	if iters < 1 || k < 1 {
		panic("trace: VRCGSchedule needs iters >= 1 and k >= 1")
	}
	m := depth.NewModel(n, d)
	tr := &Trace{}
	reduceLat := float64(1 + depth.Log2Ceil(n))
	scalarLat := float64(depth.Log2Ceil(6*k+5) + 2)
	mvLat := float64(1 + depth.Log2Ceil(d))

	// Steady-state iteration period from the simulator.
	completions := depth.SimulateVRCG(m, k, iters+k+2)
	period := depth.SteadyStateRate(completions)

	for it := 0; it < iters; it++ {
		t0 := float64(it) * period
		// Scalars for iteration it consume the batch issued at it-k.
		tr.Add(UnitScalar, fmt.Sprintf("contract(*) n=%d", it), it, t0, t0+scalarLat)
		// Vector updates and the single matvec follow the scalars.
		tr.Add(UnitVector, fmt.Sprintf("families n=%d", it), it, t0+scalarLat, t0+scalarLat+2)
		tr.Add(UnitMatVec, fmt.Sprintf("A*top n=%d", it), it, t0+scalarLat+2, t0+scalarLat+2+mvLat)
		// Base inner products issued on this iteration's vectors,
		// fan-in completing during the next k iterations.
		issue := t0 + scalarLat + 2 + mvLat
		tr.Add(UnitReduce, fmt.Sprintf("baseIP n=%d (for n=%d)", it, it+k), it, issue, issue+reduceLat)
	}
	return tr
}

// StandardCGSchedule builds the synchronous standard-CG schedule for
// contrast: each iteration's two reductions sit on the critical path.
func StandardCGSchedule(n, d, iters int) *Trace {
	if iters < 1 {
		panic("trace: StandardCGSchedule needs iters >= 1")
	}
	tr := &Trace{}
	reduceLat := float64(1 + depth.Log2Ceil(n))
	mvLat := float64(1 + depth.Log2Ceil(d))
	t := 0.0
	for it := 0; it < iters; it++ {
		tr.Add(UnitMatVec, fmt.Sprintf("Ap n=%d", it), it, t, t+mvLat)
		t += mvLat
		tr.Add(UnitReduce, fmt.Sprintf("(p,Ap) n=%d", it), it, t, t+reduceLat)
		t += reduceLat
		tr.Add(UnitScalar, fmt.Sprintf("lambda n=%d", it), it, t, t+1)
		t++
		tr.Add(UnitVector, fmt.Sprintf("x,r n=%d", it), it, t, t+1)
		t++
		tr.Add(UnitReduce, fmt.Sprintf("(r,r) n=%d", it), it, t, t+reduceLat)
		t += reduceLat
		tr.Add(UnitScalar, fmt.Sprintf("alpha n=%d", it), it, t, t+1)
		t++
		tr.Add(UnitVector, fmt.Sprintf("p n=%d", it), it, t, t+1)
		t++
	}
	return tr
}

// Figure1 renders the paper's data-movement diagram for look-ahead k:
// vector recurrences flow left to right; the inner products computed on
// the iteration n-k column feed iteration n's scalar recurrences.
func Figure1(k int) string {
	if k < 1 {
		panic("trace: Figure1 needs k >= 1")
	}
	cols := []string{fmt.Sprintf("n-%d", k)}
	if k > 2 {
		cols = append(cols, fmt.Sprintf("n-%d", k-1), "...")
	} else if k == 2 {
		cols = append(cols, "n-1")
	}
	if k > 1 {
		cols = append(cols, "n-1")
	}
	cols = append(cols, "n")
	// Deduplicate possible repeats for small k.
	uniq := cols[:1]
	for _, c := range cols[1:] {
		if c != uniq[len(uniq)-1] {
			uniq = append(uniq, c)
		}
	}
	cols = uniq

	cell := func(v, c string) string { return fmt.Sprintf("%s(%s)", v, c) }
	var sb strings.Builder
	for _, v := range []string{"u", "p", "r"} {
		row := make([]string, len(cols))
		for i, c := range cols {
			row[i] = fmt.Sprintf("%-9s", cell(v, c))
		}
		sb.WriteString(strings.Join(row, " --> "))
		sb.WriteByte('\n')
	}
	first := cell("r", cols[0])
	sb.WriteString(strings.Repeat(" ", len(first)/2) + "|\n")
	sb.WriteString(strings.Repeat(" ", len(first)/2) + "v\n")
	sb.WriteString(fmt.Sprintf("[ inner products (r,A^i r), (r,A^i p), (p,A^i p), i=0..%d ]\n", 2*k))
	sb.WriteString(strings.Repeat(" ", len(first)/2) +
		fmt.Sprintf("\\---- summation fan-ins pipelined over %d iterations ----> ", k) +
		"(r(n),r(n)), (p(n),Ap(n))\n")
	sb.WriteString("Figure 1: principal data movement in the restructured CG algorithm\n")
	return sb.String()
}
