package trace

import (
	"strings"
	"testing"
)

func TestAddAndSpan(t *testing.T) {
	tr := &Trace{}
	tr.Add(UnitVector, "a", 0, 1, 3)
	tr.Add(UnitReduce, "b", 1, 2, 10)
	lo, hi := tr.Span()
	if lo != 1 || hi != 10 {
		t.Fatalf("span [%v, %v], want [1, 10]", lo, hi)
	}
}

func TestSpanEmpty(t *testing.T) {
	tr := &Trace{}
	lo, hi := tr.Span()
	if lo != 0 || hi != 0 {
		t.Fatalf("empty span [%v, %v]", lo, hi)
	}
}

func TestAddPanicsOnInvertedInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(&Trace{}).Add(UnitVector, "bad", 0, 5, 1)
}

func TestRenderContainsUnits(t *testing.T) {
	tr := &Trace{}
	tr.Add(UnitVector, "v", 0, 0, 2)
	tr.Add(UnitMatVec, "m", 0, 2, 4)
	tr.Add(UnitReduce, "r", 0, 4, 12)
	tr.Add(UnitScalar, "s", 1, 12, 13)
	out := tr.Render(60)
	for _, u := range []string{"VEC", "MATVEC", "REDUCE", "SCALAR"} {
		if !strings.Contains(out, u) {
			t.Fatalf("render missing unit %s:\n%s", u, out)
		}
	}
}

func TestRenderStacksOverlaps(t *testing.T) {
	tr := &Trace{}
	// Three overlapping reductions must occupy three rows.
	tr.Add(UnitReduce, "a", 0, 0, 10)
	tr.Add(UnitReduce, "b", 1, 1, 11)
	tr.Add(UnitReduce, "c", 2, 2, 12)
	out := tr.Render(40)
	if got := strings.Count(out, "|"); got < 6 {
		t.Fatalf("expected >= 3 reduce rows (6 pipes), got %d in:\n%s", got, out)
	}
}

func TestVRCGScheduleOverlapsReductions(t *testing.T) {
	// The essence of Figure 1: with k = log2(N), reductions from k
	// consecutive iterations are simultaneously in flight.
	tr := VRCGSchedule(1<<16, 5, 16, 40)
	var reduces []Event
	for _, e := range tr.Events {
		if e.Unit == UnitReduce {
			reduces = append(reduces, e)
		}
	}
	if len(reduces) != 40 {
		t.Fatalf("expected 40 reductions, got %d", len(reduces))
	}
	// Count the max number of concurrently open reductions.
	maxOpen := 0
	for _, e := range reduces {
		open := 0
		for _, f := range reduces {
			if f.Start < e.End && e.Start < f.End {
				open++
			}
		}
		if open > maxOpen {
			maxOpen = open
		}
	}
	if maxOpen < 3 {
		t.Fatalf("reductions not pipelined: max %d concurrent", maxOpen)
	}
}

func TestStandardCGScheduleSerializesReductions(t *testing.T) {
	tr := StandardCGSchedule(1<<16, 5, 10)
	var reduces []Event
	for _, e := range tr.Events {
		if e.Unit == UnitReduce {
			reduces = append(reduces, e)
		}
	}
	if len(reduces) != 20 {
		t.Fatalf("expected 20 reductions, got %d", len(reduces))
	}
	for i := 1; i < len(reduces); i++ {
		if reduces[i].Start < reduces[i-1].End {
			t.Fatal("standard CG reductions must not overlap")
		}
	}
}

func TestVRCGScheduleShorterThanCG(t *testing.T) {
	iters := 30
	_, hiVR := VRCGSchedule(1<<16, 5, 16, iters).Span()
	_, hiCG := StandardCGSchedule(1<<16, 5, iters).Span()
	if hiVR >= hiCG {
		t.Fatalf("VRCG schedule (%.0f) not shorter than CG (%.0f)", hiVR, hiCG)
	}
}

func TestFigure1Content(t *testing.T) {
	for _, k := range []int{1, 2, 4, 10} {
		out := Figure1(k)
		for _, want := range []string{"u(n)", "p(n)", "r(n)", "inner products", "Figure 1"} {
			if !strings.Contains(out, want) {
				t.Fatalf("k=%d: Figure1 missing %q:\n%s", k, want, out)
			}
		}
		if !strings.Contains(out, "(r(n),r(n))") {
			t.Fatalf("k=%d: missing target scalars", k)
		}
	}
}

func TestPanicsOnBadParameters(t *testing.T) {
	for _, f := range []func(){
		func() { VRCGSchedule(16, 3, 0, 5) },
		func() { VRCGSchedule(16, 3, 2, 0) },
		func() { StandardCGSchedule(16, 3, 0) },
		func() { Figure1(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSemilogPlotBasics(t *testing.T) {
	s := []Series{
		{Name: "cg", Values: []float64{1, 0.1, 0.01, 0.001}},
		{Name: "sd", Values: []float64{1, 0.5, 0.25, 0.125}},
	}
	out := SemilogPlot(s, 40, 10)
	if !strings.Contains(out, "cg") || !strings.Contains(out, "sd") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatalf("markers missing:\n%s", out)
	}
}

func TestSemilogPlotDegenerate(t *testing.T) {
	if out := SemilogPlot(nil, 40, 10); !strings.Contains(out, "no series") {
		t.Fatalf("empty input: %q", out)
	}
	if out := SemilogPlot([]Series{{Name: "z", Values: []float64{0, -1}}}, 40, 10); !strings.Contains(out, "no positive") {
		t.Fatalf("nonpositive input: %q", out)
	}
	// Constant series must not divide by zero.
	out := SemilogPlot([]Series{{Name: "c", Values: []float64{5, 5, 5}}}, 40, 10)
	if !strings.Contains(out, "c") {
		t.Fatalf("constant series: %q", out)
	}
}

func TestSemilogPlotClampsTinySizes(t *testing.T) {
	out := SemilogPlot([]Series{{Name: "a", Values: []float64{1, 0.1}}}, 1, 1)
	if out == "" {
		t.Fatal("empty output for clamped sizes")
	}
}

func TestSemilogPlotSinglePoint(t *testing.T) {
	out := SemilogPlot([]Series{{Name: "p", Values: []float64{3}}}, 30, 5)
	if !strings.Contains(out, "p") {
		t.Fatal("single point plot failed")
	}
}
