package trace

import (
	"fmt"
	"math"
	"strings"
)

// Series is a named convergence history for plotting.
type Series struct {
	Name   string
	Values []float64 // per-iteration residual norms (positive)
}

// SemilogPlot renders residual histories on a shared log10 y-axis as an
// ASCII chart: iterations on x, log residual on y. Values <= 0 are
// clamped to the smallest positive value present. Each series is drawn
// with its own marker character.
func SemilogPlot(series []Series, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	if len(series) == 0 {
		return "(no series)\n"
	}
	markers := []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

	// Ranges.
	maxLen := 0
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s.Values) > maxLen {
			maxLen = len(s.Values)
		}
		for _, v := range s.Values {
			if v > 0 {
				if v < minV {
					minV = v
				}
				if v > maxV {
					maxV = v
				}
			}
		}
	}
	if maxLen == 0 || math.IsInf(minV, 1) {
		return "(no positive values)\n"
	}
	if minV == maxV {
		maxV = minV * 10
	}
	logMin, logMax := math.Log10(minV), math.Log10(maxV)

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	xCol := func(i int) int {
		if maxLen == 1 {
			return 0
		}
		c := i * (width - 1) / (maxLen - 1)
		return c
	}
	yRow := func(v float64) int {
		if v <= 0 {
			v = minV
		}
		frac := (math.Log10(v) - logMin) / (logMax - logMin)
		r := int(math.Round(float64(height-1) * (1 - frac)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	for si, s := range series {
		mark := markers[si%len(markers)]
		for i, v := range s.Values {
			grid[yRow(v)][xCol(i)] = mark
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "residual (log10 scale %.1f .. %.1f), %d iterations\n", logMax, logMin, maxLen)
	for r, row := range grid {
		label := "         "
		if r == 0 {
			label = fmt.Sprintf("%8.1f ", logMax)
		} else if r == height-1 {
			label = fmt.Sprintf("%8.1f ", logMin)
		}
		sb.WriteString(label)
		sb.WriteByte('|')
		sb.Write(row)
		sb.WriteString("|\n")
	}
	sb.WriteString(strings.Repeat(" ", 9) + "+" + strings.Repeat("-", width) + "+\n")
	for si, s := range series {
		fmt.Fprintf(&sb, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	return sb.String()
}
