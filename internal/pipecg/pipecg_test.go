package pipecg

import (
	"testing"
	"testing/quick"

	"vrcg/internal/krylov"
	"vrcg/internal/vec"
	"vrcg/sparse"
)

func testSystem(m int, seed uint64) (*sparse.CSR, vec.Vector, vec.Vector) {
	a := sparse.Poisson2D(m)
	n := a.Dim()
	xTrue := vec.New(n)
	vec.Random(xTrue, seed)
	b := vec.New(n)
	a.MulVec(b, xTrue)
	return a, b, xTrue
}

func TestGhyselsVanrooseSolves(t *testing.T) {
	a, b, _ := testSystem(8, 1)
	res, err := GhyselsVanroose(a, b, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("no convergence in %d iterations", res.Iterations)
	}
	if res.TrueResidualNorm > 1e-8*vec.Norm2(b) {
		t.Fatalf("true residual %g", res.TrueResidualNorm)
	}
}

func TestGroppSolves(t *testing.T) {
	a, b, _ := testSystem(8, 2)
	res, err := Gropp(a, b, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("no convergence in %d iterations", res.Iterations)
	}
	if res.TrueResidualNorm > 1e-8*vec.Norm2(b) {
		t.Fatalf("true residual %g", res.TrueResidualNorm)
	}
}

func TestPipelinedMatchesCGIterationCounts(t *testing.T) {
	// Same Krylov method, rearranged recurrences: iteration counts track
	// standard CG closely on well-conditioned problems.
	a, b, _ := testSystem(7, 3)
	cg, err := krylov.CG(a, b, krylov.Options{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	gv, err := GhyselsVanroose(a, b, Options{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	gr, err := Gropp(a, b, Options{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	for name, it := range map[string]int{"GV": gv.Iterations, "Gropp": gr.Iterations} {
		if diff := it - cg.Iterations; diff < -3 || diff > 3 {
			t.Fatalf("%s iterations %d vs CG %d", name, it, cg.Iterations)
		}
	}
	if !vec.EqualTol(gv.X, cg.X, 1e-5) || !vec.EqualTol(gr.X, cg.X, 1e-5) {
		t.Fatal("pipelined solutions differ from CG")
	}
}

func TestGhyselsVanrooseOneMatvecPerIteration(t *testing.T) {
	a, b, _ := testSystem(6, 4)
	res, err := GhyselsVanroose(a, b, Options{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	// Setup: r0 (1) + w0 (1); exit: true residual (1); 1 per iteration.
	want := res.Iterations + 3
	if res.Stats.MatVecs != want {
		t.Fatalf("matvecs = %d, want %d", res.Stats.MatVecs, want)
	}
	// One fused reduction pair per iteration.
	if res.Stats.InnerProducts != 2*res.Iterations+2 {
		t.Fatalf("inner products = %d, want %d", res.Stats.InnerProducts, 2*res.Iterations+2)
	}
}

func TestGroppOneMatvecPerIteration(t *testing.T) {
	a, b, _ := testSystem(6, 5)
	res, err := Gropp(a, b, Options{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	want := res.Iterations + 3 // r0, s0, exit check
	if res.Stats.MatVecs != want {
		t.Fatalf("matvecs = %d, want %d", res.Stats.MatVecs, want)
	}
}

func TestHistoryAndZeroRHS(t *testing.T) {
	a := sparse.Poisson1D(12)
	res, err := GhyselsVanroose(a, vec.New(12), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations != 0 {
		t.Fatal("zero rhs should converge immediately")
	}

	b := vec.New(12)
	vec.Random(b, 6)
	res, err = GhyselsVanroose(a, b, Options{Tol: 1e-8, RecordHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != res.Iterations+1 {
		t.Fatalf("history %d entries for %d iterations", len(res.History), res.Iterations)
	}
}

func TestRejectsBadArguments(t *testing.T) {
	a := sparse.Poisson1D(5)
	if _, err := GhyselsVanroose(a, vec.New(6), Options{}); err == nil {
		t.Fatal("expected dimension error")
	}
	if _, err := Gropp(a, vec.New(5), Options{X0: vec.New(2)}); err == nil {
		t.Fatal("expected x0 error")
	}
}

func TestIndefiniteDetected(t *testing.T) {
	a := sparse.DiagonalMatrix(vec.NewFrom([]float64{1, -1}))
	b := vec.NewFrom([]float64{1, 1})
	if _, err := Gropp(a, b, Options{}); err == nil {
		t.Fatal("Gropp: expected error on indefinite operator")
	}
	if _, err := GhyselsVanroose(a, b, Options{}); err == nil {
		t.Fatal("GV: expected error on indefinite operator")
	}
}

func TestPipelinedDriftVsCG(t *testing.T) {
	// The known cost of pipelining: extra recurrences mean the true
	// residual floor is somewhat above plain CG's. Document it holds
	// within a couple orders of magnitude, not that it is free.
	a, b, _ := testSystem(10, 7)
	cg, err := krylov.CG(a, b, krylov.Options{Tol: 1e-12, MaxIter: 2000})
	if err != nil {
		t.Fatal(err)
	}
	gv, err := GhyselsVanroose(a, b, Options{Tol: 1e-12, MaxIter: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if gv.TrueResidualNorm > 1e4*(cg.TrueResidualNorm+1e-16) {
		t.Fatalf("GV floor %g too far above CG floor %g", gv.TrueResidualNorm, cg.TrueResidualNorm)
	}
}

// Property: both pipelined variants solve random SPD systems.
func TestPropPipelinedSolves(t *testing.T) {
	f := func(seed uint64, whichGV bool) bool {
		n := 36
		a := sparse.RandomSPD(n, 4, seed)
		x := vec.New(n)
		vec.Random(x, seed+1)
		b := vec.New(n)
		a.MulVec(b, x)
		var (
			res *Result
			err error
		)
		if whichGV {
			res, err = GhyselsVanroose(a, b, Options{Tol: 1e-8, MaxIter: 20 * n})
		} else {
			res, err = Gropp(a, b, Options{Tol: 1e-8, MaxIter: 20 * n})
		}
		if err != nil || !res.Converged {
			return false
		}
		return res.TrueResidualNorm <= 1e-5*vec.Norm2(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
