// Package pipecg implements the pipelined conjugate gradient methods
// that descend directly from the paper's idea and reached production
// solvers: Ghysels–Vanroose pipelined CG (2014; PETSc's KSPPIPECG) and
// Gropp's asynchronous two-reduction variant. Both restructure CG so
// global reductions overlap with the matrix–vector product — a depth-one
// version of the paper's k-deep look-ahead pipeline.
//
// Both methods are engine kernels (internal/engine): this package owns
// the pipelined recurrences; the engine driver owns options,
// convergence, callbacks, and history. These sequential reference
// implementations validate the recurrences and provide convergence
// baselines; their parallel-time behaviour is modelled in packages
// depth and parcg.
package pipecg

import (
	"fmt"

	"vrcg/internal/engine"
	"vrcg/internal/krylov"
	"vrcg/internal/vec"
	"vrcg/sparse"
)

// Error sentinels shared with the rest of the solver family.
var (
	ErrIndefinite = engine.ErrIndefinite
	ErrBreakdown  = engine.ErrBreakdown
)

// Options configures a pipelined solve (the engine's shared Config;
// fields irrelevant here — Precond, K, S — are ignored).
type Options = engine.Config

// Result reports a pipelined solve (the canonical engine result).
type Result = engine.Result

// Stats re-exports the shared work counters.
type Stats = krylov.Stats

// run drives kernel k once on a fresh workspace.
func run(k engine.Kernel, a sparse.Matrix, b vec.Vector, o Options) (*Result, error) {
	if a.Dim() <= 0 {
		return nil, fmt.Errorf("pipecg: operator order %d must be positive: %w", a.Dim(), sparse.ErrDim)
	}
	res := new(Result)
	err := engine.Solve(k, engine.NewWorkspace(a.Dim(), o.Pool), a, b, o, res)
	return res, err
}

// GhyselsVanroose solves A x = b by the single-reduction pipelined CG;
// see gvKernel for the recurrences.
func GhyselsVanroose(a sparse.Matrix, b vec.Vector, o Options) (*Result, error) {
	return run(NewGVKernel(), a, b, o)
}

// Gropp solves A x = b by Gropp's asynchronous variant: two reductions
// per iteration, each overlapped with one of the two matvec-shaped
// operations, using the auxiliary vector s = A p.
func Gropp(a sparse.Matrix, b vec.Vector, o Options) (*Result, error) {
	return run(NewGroppKernel(), a, b, o)
}
