// Package pipecg implements the pipelined conjugate gradient methods
// that descend directly from the paper's idea and reached production
// solvers: Ghysels–Vanroose pipelined CG (2014; PETSc's KSPPIPECG) and
// Gropp's asynchronous two-reduction variant. Both restructure CG so
// global reductions overlap with the matrix–vector product — a depth-one
// version of the paper's k-deep look-ahead pipeline.
//
// These sequential reference implementations validate the recurrences
// and provide convergence baselines; their parallel-time behaviour is
// modelled in packages depth and parcg.
package pipecg

import (
	"fmt"
	"math"

	"vrcg/internal/krylov"
	"vrcg/internal/vec"
	"vrcg/sparse"
)

// Options configures a pipelined solve.
type Options struct {
	// MaxIter bounds iterations; 0 means 10*n.
	MaxIter int
	// Tol is the relative residual tolerance; 0 means 1e-10.
	Tol float64
	// X0 is the initial guess; nil means zero.
	X0 vec.Vector
	// RecordHistory enables Result.History.
	RecordHistory bool
	// Callback, when non-nil, is invoked after each iteration with the
	// iteration number and current residual norm; returning false stops
	// the solve early.
	Callback func(iter int, resNorm float64) bool
}

func matvecFlops(a sparse.Matrix) int64 {
	if sp, ok := a.(sparse.Sparse); ok {
		return 2 * int64(sp.NNZ())
	}
	n := int64(a.Dim())
	return 2 * n * n
}

// Result reports a pipelined solve.
type Result struct {
	X                vec.Vector
	Iterations       int
	Converged        bool
	ResidualNorm     float64
	TrueResidualNorm float64
	History          []float64
	Stats            krylov.Stats
}

func validate(a sparse.Matrix, b vec.Vector, o Options) (Options, error) {
	if a.Dim() != len(b) {
		return o, fmt.Errorf("pipecg: matrix order %d but rhs length %d: %w", a.Dim(), len(b), sparse.ErrDim)
	}
	if o.X0 != nil && len(o.X0) != a.Dim() {
		return o, fmt.Errorf("pipecg: x0 length %d for order %d: %w", len(o.X0), a.Dim(), sparse.ErrDim)
	}
	if o.MaxIter == 0 {
		o.MaxIter = 10 * a.Dim()
	}
	if o.Tol == 0 {
		o.Tol = 1e-10
	}
	return o, nil
}

// GhyselsVanroose solves A x = b by the single-reduction pipelined CG.
// Per iteration: one matvec (n = A w, overlappable with the reduction of
// gamma = (r,r) and delta = (w,r)) and the vector recurrences
//
//	p = r + beta p;  s = w + beta s (= A p);  q = n + beta q (= A s)
//	x += alpha p;  r -= alpha s;  w -= alpha q (= A r maintained)
func GhyselsVanroose(a sparse.Matrix, b vec.Vector, o Options) (*Result, error) {
	o, err := validate(a, b, o)
	if err != nil {
		return nil, err
	}
	n := a.Dim()
	res := &Result{}
	if o.X0 != nil {
		res.X = vec.Clone(o.X0)
	} else {
		res.X = vec.New(n)
	}
	r := vec.New(n)
	a.MulVec(r, res.X)
	vec.Sub(r, b, r)
	res.Stats.MatVecs++
	res.Stats.Flops += matvecFlops(a)

	w := vec.New(n)
	a.MulVec(w, r)
	res.Stats.MatVecs++
	res.Stats.Flops += matvecFlops(a)

	p := vec.New(n)
	s := vec.New(n)
	q := vec.New(n)
	nv := vec.New(n)

	bnorm := vec.Norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}
	threshold := o.Tol * bnorm

	gamma, delta := vec.DotPair(r, r, w)
	res.Stats.InnerProducts += 2
	res.Stats.Flops += 4 * int64(n)
	var gammaOld, alphaOld float64
	first := true

	record := func() {
		if o.RecordHistory {
			res.History = append(res.History, math.Sqrt(math.Max(gamma, 0)))
		}
	}
	record()

	for res.Iterations < o.MaxIter {
		if math.Sqrt(math.Max(gamma, 0)) <= threshold {
			res.Converged = true
			break
		}
		// The matvec below would overlap the (gamma, delta) reduction on
		// a parallel machine; sequentially we just order them.
		a.MulVec(nv, w)
		res.Stats.MatVecs++
		res.Stats.Flops += matvecFlops(a)

		var beta, alpha float64
		if first {
			beta = 0
			if delta == 0 {
				return res, fmt.Errorf("pipecg: (w,r) vanished at startup: %w", krylov.ErrBreakdown)
			}
			alpha = gamma / delta
			first = false
		} else {
			beta = gamma / gammaOld
			den := delta - beta*gamma/alphaOld
			if den == 0 || math.IsNaN(den) {
				return res, fmt.Errorf("pipecg: pipelined scalar breakdown at iteration %d: %w", res.Iterations, krylov.ErrBreakdown)
			}
			alpha = gamma / den
		}
		if alpha <= 0 || math.IsNaN(alpha) {
			return res, fmt.Errorf("pipecg: nonpositive step %g at iteration %d: %w", alpha, res.Iterations, krylov.ErrIndefinite)
		}

		vec.Xpay(r, beta, p)
		vec.Xpay(w, beta, s)
		vec.Xpay(nv, beta, q)
		vec.Axpy(alpha, p, res.X)
		vec.Axpy(-alpha, s, r)
		vec.Axpy(-alpha, q, w)
		res.Stats.VectorUpdates += 6
		res.Stats.Flops += 12 * int64(n)

		gammaOld, alphaOld = gamma, alpha
		gamma, delta = vec.DotPair(r, r, w)
		res.Stats.InnerProducts += 2
		res.Stats.Flops += 4 * int64(n)
		res.Iterations++
		record()
		if o.Callback != nil && !o.Callback(res.Iterations, math.Sqrt(math.Max(gamma, 0))) {
			break
		}
	}
	if math.Sqrt(math.Max(gamma, 0)) <= threshold {
		res.Converged = true
	}
	res.ResidualNorm = math.Sqrt(math.Max(gamma, 0))
	finish(a, b, res)
	return res, nil
}

// Gropp solves A x = b by Gropp's asynchronous variant: two reductions
// per iteration, each overlapped with one of the two matvec-shaped
// operations, using the auxiliary vector s = A p.
func Gropp(a sparse.Matrix, b vec.Vector, o Options) (*Result, error) {
	o, err := validate(a, b, o)
	if err != nil {
		return nil, err
	}
	n := a.Dim()
	res := &Result{}
	if o.X0 != nil {
		res.X = vec.Clone(o.X0)
	} else {
		res.X = vec.New(n)
	}
	r := vec.New(n)
	a.MulVec(r, res.X)
	vec.Sub(r, b, r)
	res.Stats.MatVecs++
	res.Stats.Flops += matvecFlops(a)

	p := vec.Clone(r)
	s := vec.New(n)
	a.MulVec(s, p)
	res.Stats.MatVecs++
	res.Stats.Flops += matvecFlops(a)

	bnorm := vec.Norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}
	threshold := o.Tol * bnorm

	gamma := vec.Dot(r, r)
	res.Stats.InnerProducts++
	res.Stats.Flops += 2 * int64(n)

	record := func() {
		if o.RecordHistory {
			res.History = append(res.History, math.Sqrt(math.Max(gamma, 0)))
		}
	}
	record()

	w := vec.New(n)
	for res.Iterations < o.MaxIter {
		if math.Sqrt(math.Max(gamma, 0)) <= threshold {
			res.Converged = true
			break
		}
		// First reduction: delta = (p, s). (In the preconditioned form
		// it overlaps with the preconditioner solve.)
		delta := vec.Dot(p, s)
		res.Stats.InnerProducts++
		res.Stats.Flops += 2 * int64(n)
		if delta <= 0 || math.IsNaN(delta) {
			return res, fmt.Errorf("pipecg: curvature %g at iteration %d: %w", delta, res.Iterations, krylov.ErrIndefinite)
		}
		alpha := gamma / delta
		vec.Axpy(alpha, p, res.X)
		vec.Axpy(-alpha, s, r)
		res.Stats.VectorUpdates += 2
		res.Stats.Flops += 4 * int64(n)

		// Second reduction gamma' = (r, r) overlaps with the single
		// matvec w = A r on a parallel machine.
		gammaNew := vec.Dot(r, r)
		res.Stats.InnerProducts++
		res.Stats.Flops += 2 * int64(n)
		a.MulVec(w, r)
		res.Stats.MatVecs++
		res.Stats.Flops += matvecFlops(a)

		beta := gammaNew / gamma
		vec.Xpay(r, beta, p)
		vec.Xpay(w, beta, s) // s = A p maintained by recurrence
		res.Stats.VectorUpdates += 2
		res.Stats.Flops += 4 * int64(n)

		gamma = gammaNew
		res.Iterations++
		record()
		if o.Callback != nil && !o.Callback(res.Iterations, math.Sqrt(math.Max(gamma, 0))) {
			break
		}
	}
	if math.Sqrt(math.Max(gamma, 0)) <= threshold {
		res.Converged = true
	}
	res.ResidualNorm = math.Sqrt(math.Max(gamma, 0))
	finish(a, b, res)
	return res, nil
}

func finish(a sparse.Matrix, b vec.Vector, res *Result) {
	tr := vec.New(a.Dim())
	a.MulVec(tr, res.X)
	vec.Sub(tr, b, tr)
	res.Stats.MatVecs++
	res.Stats.Flops += matvecFlops(a)
	res.TrueResidualNorm = vec.Norm2(tr)
}
