package pipecg

import (
	"fmt"
	"math"

	"vrcg/internal/engine"
	"vrcg/internal/vec"
)

// gvKernel is Ghysels–Vanroose single-reduction pipelined CG. Per
// iteration: one matvec (n = A w, overlappable with the reduction of
// gamma = (r,r) and delta = (w,r)) and the vector recurrences
//
//	p = r + beta p;  s = w + beta s (= A p);  q = n + beta q (= A s)
//	x += alpha p;  r -= alpha s;  w -= alpha q (= A r maintained)
type gvKernel struct {
	x, r, w, p, s, q, nv vec.Vector

	gamma, delta       float64
	gammaOld, alphaOld float64
	first              bool
}

// NewGVKernel returns the pipecg (Ghysels–Vanroose) iteration kernel.
func NewGVKernel() engine.Kernel { return &gvKernel{} }

func (k *gvKernel) Name() string { return "pipecg" }

func (k *gvKernel) resNorm() float64 { return math.Sqrt(math.Max(k.gamma, 0)) }

func (k *gvKernel) Init(run *engine.Run) (float64, error) {
	ws := run.Ws
	n := ws.Dim()
	k.x, k.r, k.w = ws.Vec(0), ws.Vec(1), ws.Vec(2)
	k.p, k.s, k.q, k.nv = ws.Vec(3), ws.Vec(4), ws.Vec(5), ws.Vec(6)

	if run.Cfg.X0 != nil {
		vec.Copy(k.x, run.Cfg.X0)
	} else {
		vec.Zero(k.x)
	}
	run.Res.X = k.x

	ws.MatVec(run.A, k.r, k.x)
	vec.Sub(k.r, run.B, k.r)
	run.Res.Stats.MatVecs++
	run.Res.Stats.Flops += engine.MatVecFlops(run.A)

	ws.MatVec(run.A, k.w, k.r)
	run.Res.Stats.MatVecs++
	run.Res.Stats.Flops += engine.MatVecFlops(run.A)

	vec.Zero(k.p)
	vec.Zero(k.s)
	vec.Zero(k.q)

	k.gamma, k.delta = ws.DotPair(k.r, k.r, k.w)
	run.Res.Stats.InnerProducts += 2
	run.Res.Stats.Flops += 4 * int64(n)
	k.gammaOld, k.alphaOld = 0, 0
	k.first = true
	return k.resNorm(), nil
}

func (k *gvKernel) Residual(*engine.Run) float64 { return k.resNorm() }

func (k *gvKernel) Step(run *engine.Run) error {
	ws, res := run.Ws, run.Res
	n := int64(ws.Dim())

	// The matvec below would overlap the (gamma, delta) reduction on
	// a parallel machine; sequentially we just order them.
	ws.MatVec(run.A, k.nv, k.w)
	res.Stats.MatVecs++
	res.Stats.Flops += engine.MatVecFlops(run.A)

	var beta, alpha float64
	if k.first {
		beta = 0
		if k.delta == 0 {
			return fmt.Errorf("pipecg: (w,r) vanished at startup: %w", ErrBreakdown)
		}
		alpha = k.gamma / k.delta
		k.first = false
	} else {
		beta = k.gamma / k.gammaOld
		den := k.delta - beta*k.gamma/k.alphaOld
		if den == 0 || math.IsNaN(den) {
			return fmt.Errorf("pipecg: pipelined scalar breakdown at iteration %d: %w", res.Iterations, ErrBreakdown)
		}
		alpha = k.gamma / den
	}
	if alpha <= 0 || math.IsNaN(alpha) {
		return fmt.Errorf("pipecg: nonpositive step %g at iteration %d: %w", alpha, res.Iterations, ErrIndefinite)
	}

	ws.Xpay(k.r, beta, k.p)
	ws.Xpay(k.w, beta, k.s)
	ws.Xpay(k.nv, beta, k.q)
	ws.Axpy(alpha, k.p, k.x)
	ws.Axpy(-alpha, k.s, k.r)
	ws.Axpy(-alpha, k.q, k.w)
	res.Stats.VectorUpdates += 6
	res.Stats.Flops += 12 * n

	k.gammaOld, k.alphaOld = k.gamma, alpha
	k.gamma, k.delta = ws.DotPair(k.r, k.r, k.w)
	res.Stats.InnerProducts += 2
	res.Stats.Flops += 4 * n
	run.Tick(k.resNorm())
	return nil
}

func (k *gvKernel) Finish(run *engine.Run) {
	// True residual into nv (no longer needed this solve).
	run.Ws.MatVec(run.A, k.nv, k.x)
	vec.Sub(k.nv, run.B, k.nv)
	run.Res.Stats.MatVecs++
	run.Res.Stats.Flops += engine.MatVecFlops(run.A)
	run.Res.TrueResidualNorm = vec.Norm2(k.nv)
}

// groppKernel is Gropp's asynchronous variant: two reductions per
// iteration, each overlapped with one of the two matvec-shaped
// operations, using the auxiliary vector s = A p.
type groppKernel struct {
	x, r, p, s, w vec.Vector
	gamma         float64
}

// NewGroppKernel returns the gropp iteration kernel.
func NewGroppKernel() engine.Kernel { return &groppKernel{} }

func (k *groppKernel) Name() string { return "gropp" }

func (k *groppKernel) resNorm() float64 { return math.Sqrt(math.Max(k.gamma, 0)) }

func (k *groppKernel) Init(run *engine.Run) (float64, error) {
	ws := run.Ws
	n := ws.Dim()
	k.x, k.r, k.p, k.s, k.w = ws.Vec(0), ws.Vec(1), ws.Vec(2), ws.Vec(3), ws.Vec(4)

	if run.Cfg.X0 != nil {
		vec.Copy(k.x, run.Cfg.X0)
	} else {
		vec.Zero(k.x)
	}
	run.Res.X = k.x

	ws.MatVec(run.A, k.r, k.x)
	vec.Sub(k.r, run.B, k.r)
	run.Res.Stats.MatVecs++
	run.Res.Stats.Flops += engine.MatVecFlops(run.A)

	vec.Copy(k.p, k.r)
	ws.MatVec(run.A, k.s, k.p)
	run.Res.Stats.MatVecs++
	run.Res.Stats.Flops += engine.MatVecFlops(run.A)

	k.gamma = ws.Dot(k.r, k.r)
	run.Res.Stats.InnerProducts++
	run.Res.Stats.Flops += 2 * int64(n)
	return k.resNorm(), nil
}

func (k *groppKernel) Residual(*engine.Run) float64 { return k.resNorm() }

func (k *groppKernel) Step(run *engine.Run) error {
	ws, res := run.Ws, run.Res
	n := int64(ws.Dim())

	// First reduction: delta = (p, s). (In the preconditioned form it
	// overlaps with the preconditioner solve.)
	delta := ws.Dot(k.p, k.s)
	res.Stats.InnerProducts++
	res.Stats.Flops += 2 * n
	if delta <= 0 || math.IsNaN(delta) {
		return fmt.Errorf("pipecg: curvature %g at iteration %d: %w", delta, res.Iterations, ErrIndefinite)
	}
	alpha := k.gamma / delta
	ws.Axpy(alpha, k.p, k.x)
	ws.Axpy(-alpha, k.s, k.r)
	res.Stats.VectorUpdates += 2
	res.Stats.Flops += 4 * n

	// Second reduction gamma' = (r, r) overlaps with the single matvec
	// w = A r on a parallel machine.
	gammaNew := ws.Dot(k.r, k.r)
	res.Stats.InnerProducts++
	res.Stats.Flops += 2 * n
	ws.MatVec(run.A, k.w, k.r)
	res.Stats.MatVecs++
	res.Stats.Flops += engine.MatVecFlops(run.A)

	beta := gammaNew / k.gamma
	ws.Xpay(k.r, beta, k.p)
	ws.Xpay(k.w, beta, k.s) // s = A p maintained by recurrence
	res.Stats.VectorUpdates += 2
	res.Stats.Flops += 4 * n

	k.gamma = gammaNew
	run.Tick(k.resNorm())
	return nil
}

func (k *groppKernel) Finish(run *engine.Run) {
	run.Ws.MatVec(run.A, k.w, k.x)
	vec.Sub(k.w, run.B, k.w)
	run.Res.Stats.MatVecs++
	run.Res.Stats.Flops += engine.MatVecFlops(run.A)
	run.Res.TrueResidualNorm = vec.Norm2(k.w)
}
