package pipecg

import (
	"runtime"
	"testing"

	"vrcg/internal/vec"
	"vrcg/sparse"
)

func TestWorkspaceGhyselsVanrooseMatchesPackage(t *testing.T) {
	a := sparse.Poisson2D(20)
	b := vec.New(a.Dim())
	vec.Random(b, 33)
	ref, err := GhyselsVanroose(a, b, Options{Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, 2, runtime.GOMAXPROCS(0)} {
		var pool *vec.Pool
		if w > 0 {
			pool = vec.NewPoolMinChunk(w, 32)
		}
		ws := NewWorkspace(a.Dim(), pool)
		res, err := ws.GhyselsVanroose(a, b, Options{Tol: 1e-9})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !res.Converged {
			t.Fatalf("workers=%d: not converged", w)
		}
		if !vec.EqualTol(res.X, ref.X, 1e-6) {
			t.Fatalf("workers=%d: workspace solution differs", w)
		}
		if res.Iterations != ref.Iterations && w == 0 {
			t.Fatalf("serial workspace iterations %d != package %d", res.Iterations, ref.Iterations)
		}
		if pool != nil {
			pool.Close()
		}
	}
}

func TestWorkspaceGhyselsVanrooseZeroAllocs(t *testing.T) {
	a := sparse.Poisson2D(20)
	b := vec.New(a.Dim())
	vec.Random(b, 34)
	pool := vec.NewPoolMinChunk(4, 64)
	defer pool.Close()
	ws := NewWorkspace(a.Dim(), pool)
	opts := Options{Tol: 1e-8}
	if _, err := ws.GhyselsVanroose(a, b, opts); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(10, func() {
		if _, err := ws.GhyselsVanroose(a, b, opts); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("warm workspace pipelined solve allocates %v, want 0", avg)
	}
}

func TestWorkspaceReuse(t *testing.T) {
	a := sparse.Poisson2D(12)
	n := a.Dim()
	ws := NewWorkspace(n, nil)
	for seed := uint64(1); seed <= 3; seed++ {
		b := vec.New(n)
		vec.Random(b, seed)
		res, err := ws.GhyselsVanroose(a, b, Options{Tol: 1e-8})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("seed %d: not converged", seed)
		}
	}
}
