package pipecg

import (
	"fmt"
	"math"

	"vrcg/internal/krylov"
	"vrcg/internal/vec"
	"vrcg/sparse"
)

// Workspace owns the seven vectors a Ghysels–Vanroose solve needs plus
// the worker pool its kernels run on, so repeated solves against
// same-order operators allocate nothing in steady state — the pipelined
// methods are exactly the ones meant to run at high call rates, where
// per-solve allocation churn would dominate.
//
// The X field of a returned Result aliases workspace storage and is
// valid only until the next solve. Not safe for concurrent solves.
type Workspace struct {
	pool *vec.Pool
	n    int

	x, r, w, p, s, q, nv vec.Vector
}

// NewWorkspace returns a workspace for order-n systems running its
// kernels on pool. A nil pool selects the serial kernels.
func NewWorkspace(n int, pool *vec.Pool) *Workspace {
	if n <= 0 {
		panic("pipecg: NewWorkspace requires n > 0")
	}
	return &Workspace{
		pool: pool,
		n:    n,
		x:    vec.New(n),
		r:    vec.New(n),
		w:    vec.New(n),
		p:    vec.New(n),
		s:    vec.New(n),
		q:    vec.New(n),
		nv:   vec.New(n),
	}
}

// Pool returns the worker pool the workspace dispatches to (nil = serial).
func (ws *Workspace) Pool() *vec.Pool { return ws.pool }

// Dim returns the system order the workspace is sized for.
func (ws *Workspace) Dim() int { return ws.n }

func (ws *Workspace) dotPair(x, y, z vec.Vector) (xy, xz float64) {
	return vec.PoolDotPair(ws.pool, x, y, z)
}

func (ws *Workspace) axpy(alpha float64, x, y vec.Vector) { vec.PoolAxpy(ws.pool, alpha, x, y) }

func (ws *Workspace) xpay(x vec.Vector, alpha float64, y vec.Vector) {
	vec.PoolXpay(ws.pool, x, alpha, y)
}

// GhyselsVanroose solves A x = b by single-reduction pipelined CG on the
// workspace's buffers and pool (see the package-level GhyselsVanroose
// for the recurrences). Zero steady-state heap allocations when history
// recording is off.
func (ws *Workspace) GhyselsVanroose(a sparse.Matrix, b vec.Vector, o Options) (Result, error) {
	var res Result
	if a.Dim() != ws.n {
		return res, fmt.Errorf("pipecg: workspace order %d but matrix order %d: %w", ws.n, a.Dim(), sparse.ErrDim)
	}
	o, err := validate(a, b, o)
	if err != nil {
		return res, err
	}
	n := ws.n
	if o.X0 != nil {
		vec.Copy(ws.x, o.X0)
	} else {
		vec.Zero(ws.x)
	}
	res.X = ws.x

	sparse.PooledMulVec(a, ws.pool, ws.r, ws.x)
	vec.Sub(ws.r, b, ws.r)
	res.Stats.MatVecs++
	res.Stats.Flops += matvecFlops(a)

	sparse.PooledMulVec(a, ws.pool, ws.w, ws.r)
	res.Stats.MatVecs++
	res.Stats.Flops += matvecFlops(a)

	vec.Zero(ws.p)
	vec.Zero(ws.s)
	vec.Zero(ws.q)

	bnorm := vec.Norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}
	threshold := o.Tol * bnorm

	gamma, delta := ws.dotPair(ws.r, ws.r, ws.w)
	res.Stats.InnerProducts += 2
	res.Stats.Flops += 4 * int64(n)
	var gammaOld, alphaOld float64
	first := true

	record := func() {
		if o.RecordHistory {
			res.History = append(res.History, math.Sqrt(math.Max(gamma, 0)))
		}
	}
	record()

	for res.Iterations < o.MaxIter {
		if math.Sqrt(math.Max(gamma, 0)) <= threshold {
			res.Converged = true
			break
		}
		sparse.PooledMulVec(a, ws.pool, ws.nv, ws.w)
		res.Stats.MatVecs++
		res.Stats.Flops += matvecFlops(a)

		var beta, alpha float64
		if first {
			beta = 0
			if delta == 0 {
				return res, fmt.Errorf("pipecg: (w,r) vanished at startup: %w", krylov.ErrBreakdown)
			}
			alpha = gamma / delta
			first = false
		} else {
			beta = gamma / gammaOld
			den := delta - beta*gamma/alphaOld
			if den == 0 || math.IsNaN(den) {
				return res, fmt.Errorf("pipecg: pipelined scalar breakdown at iteration %d: %w", res.Iterations, krylov.ErrBreakdown)
			}
			alpha = gamma / den
		}
		if alpha <= 0 || math.IsNaN(alpha) {
			return res, fmt.Errorf("pipecg: nonpositive step %g at iteration %d: %w", alpha, res.Iterations, krylov.ErrIndefinite)
		}

		ws.xpay(ws.r, beta, ws.p)
		ws.xpay(ws.w, beta, ws.s)
		ws.xpay(ws.nv, beta, ws.q)
		ws.axpy(alpha, ws.p, ws.x)
		ws.axpy(-alpha, ws.s, ws.r)
		ws.axpy(-alpha, ws.q, ws.w)
		res.Stats.VectorUpdates += 6
		res.Stats.Flops += 12 * int64(n)

		gammaOld, alphaOld = gamma, alpha
		gamma, delta = ws.dotPair(ws.r, ws.r, ws.w)
		res.Stats.InnerProducts += 2
		res.Stats.Flops += 4 * int64(n)
		res.Iterations++
		record()
		if o.Callback != nil && !o.Callback(res.Iterations, math.Sqrt(math.Max(gamma, 0))) {
			break
		}
	}
	if math.Sqrt(math.Max(gamma, 0)) <= threshold {
		res.Converged = true
	}
	res.ResidualNorm = math.Sqrt(math.Max(gamma, 0))

	// True residual into nv (no longer needed this solve).
	sparse.PooledMulVec(a, ws.pool, ws.nv, ws.x)
	vec.Sub(ws.nv, b, ws.nv)
	res.Stats.MatVecs++
	res.Stats.Flops += matvecFlops(a)
	res.TrueResidualNorm = vec.Norm2(ws.nv)
	return res, nil
}
