package pipecg

import (
	"vrcg/internal/engine"
	"vrcg/internal/vec"
	"vrcg/sparse"
)

// Workspace binds the Ghysels–Vanroose kernel to one reusable engine
// workspace, so repeated solves against same-order operators allocate
// nothing in steady state — the pipelined methods are exactly the ones
// meant to run at high call rates, where per-solve allocation churn
// would dominate.
//
// The X field of a returned Result aliases workspace storage and is
// valid only until the next solve. Not safe for concurrent solves.
type Workspace struct {
	eng *engine.Workspace
	gv  gvKernel
	res Result
}

// NewWorkspace returns a workspace for order-n systems running its
// kernels on pool. A nil pool selects the serial kernels.
func NewWorkspace(n int, pool *vec.Pool) *Workspace {
	if n <= 0 {
		panic("pipecg: NewWorkspace requires n > 0")
	}
	eng := engine.NewWorkspace(n, pool)
	eng.Reserve(7) // x, r, w, p, s, q, nv — all allocations happen here, not on the first solve
	return &Workspace{eng: eng}
}

// Pool returns the worker pool the workspace dispatches to (nil = serial).
func (ws *Workspace) Pool() *vec.Pool { return ws.eng.Pool() }

// Dim returns the system order the workspace is sized for.
func (ws *Workspace) Dim() int { return ws.eng.Dim() }

// GhyselsVanroose solves A x = b by single-reduction pipelined CG on the
// workspace's buffers and pool (see the package-level GhyselsVanroose
// for the recurrences). Zero steady-state heap allocations when history
// recording is off.
func (ws *Workspace) GhyselsVanroose(a sparse.Matrix, b vec.Vector, o Options) (Result, error) {
	err := engine.Solve(&ws.gv, ws.eng, a, b, o, &ws.res)
	return ws.res, err
}
