package precond_test

import (
	"fmt"

	"vrcg/precond"
	"vrcg/solve"
	"vrcg/sparse"
)

// ExampleNewJacobi runs preconditioned CG with diagonal scaling — the
// cheapest preconditioner, one multiply per row per application.
func ExampleNewJacobi() {
	a := sparse.Poisson2D(16)
	b := make([]float64, a.Dim())
	for i := range b {
		b[i] = 1
	}
	m, err := precond.NewJacobi(a)
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := solve.MustNew("pcg").Solve(a, b,
		solve.WithTol(1e-10), solve.WithPreconditioner(m))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("converged=%v precond-solves=%d\n", res.Converged, res.Stats.PrecondSolves)
	// Output: converged=true precond-solves=32
}

// ExampleNewIC0 shows why one pays for a stronger preconditioner: the
// incomplete Cholesky factorization cuts the iteration count well
// below plain CG on the same system.
func ExampleNewIC0() {
	a := sparse.Poisson2D(16)
	b := make([]float64, a.Dim())
	for i := range b {
		b[i] = 1
	}
	plain, err := solve.MustNew("cg").Solve(a, b, solve.WithTol(1e-10))
	if err != nil {
		fmt.Println(err)
		return
	}
	m, err := precond.NewIC0(a)
	if err != nil {
		fmt.Println(err)
		return
	}
	ic0, err := solve.MustNew("pcg").Solve(a, b,
		solve.WithTol(1e-10), solve.WithPreconditioner(m))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("cg=%d iterations, pcg+ic0=%d iterations, fewer=%v\n",
		plain.Iterations, ic0.Iterations, ic0.Iterations < plain.Iterations)
	// Output: cg=31 iterations, pcg+ic0=20 iterations, fewer=true
}
