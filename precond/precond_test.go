package precond

import (
	"math"
	"testing"
	"testing/quick"

	"vrcg/internal/vec"
	"vrcg/sparse"
)

func TestIdentityApply(t *testing.T) {
	p := NewIdentity(3)
	if p.Dim() != 3 {
		t.Fatalf("Dim = %d", p.Dim())
	}
	r := vec.NewFrom([]float64{1, 2, 3})
	dst := vec.New(3)
	p.Apply(dst, r)
	if !vec.Equal(dst, r) {
		t.Fatal("Identity changed the vector")
	}
}

func TestJacobiApply(t *testing.T) {
	a := sparse.DiagonalMatrix(vec.NewFrom([]float64{2, 4, 8}))
	p, err := NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	r := vec.NewFrom([]float64{2, 4, 8})
	dst := vec.New(3)
	p.Apply(dst, r)
	for i, v := range dst {
		if v != 1 {
			t.Fatalf("component %d = %v, want 1", i, v)
		}
	}
}

func TestJacobiRejectsNonPositiveDiagonal(t *testing.T) {
	coo := sparse.NewCOO(2)
	coo.Add(0, 0, 1)
	coo.Add(1, 1, -1)
	if _, err := NewJacobi(coo.ToCSR()); err == nil {
		t.Fatal("expected error for negative diagonal")
	}
	coo2 := sparse.NewCOO(2)
	coo2.Add(0, 0, 1)
	coo2.Add(0, 1, 1)
	coo2.Add(1, 0, 1)
	// missing (1,1) diagonal -> zero
	if _, err := NewJacobi(coo2.ToCSR()); err == nil {
		t.Fatal("expected error for zero diagonal")
	}
}

// applyAsDense materializes the preconditioner action as a dense matrix
// by applying it to unit vectors.
func applyAsDense(p Preconditioner) *sparse.Dense {
	n := p.Dim()
	d := sparse.NewDense(n)
	e := vec.New(n)
	out := vec.New(n)
	for j := 0; j < n; j++ {
		vec.Zero(e)
		e[j] = 1
		p.Apply(out, e)
		for i := 0; i < n; i++ {
			d.Set(i, j, out[i])
		}
	}
	return d
}

func TestSSORSymmetricOperator(t *testing.T) {
	a := sparse.Poisson2D(4)
	for _, w := range []float64{0.5, 1.0, 1.5} {
		p, err := NewSSOR(a, w)
		if err != nil {
			t.Fatal(err)
		}
		d := applyAsDense(p)
		if !d.IsSymmetric(1e-10) {
			t.Fatalf("SSOR(w=%g) application is not symmetric", w)
		}
	}
}

func TestSSORPositiveDefinite(t *testing.T) {
	a := sparse.Poisson1D(12)
	p, err := NewSSOR(a, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	out := vec.New(12)
	for trial := 0; trial < 8; trial++ {
		r := vec.New(12)
		vec.Random(r, uint64(trial+1))
		p.Apply(out, r)
		if q := vec.Dot(r, out); q <= 0 {
			t.Fatalf("SSOR quadratic form non-positive: %v", q)
		}
	}
}

func TestSSORExactForDiagonal(t *testing.T) {
	// For a diagonal matrix, SSOR with w=1 reduces to exact inversion:
	// M = D * 1 * D^{-1} * D = D.
	a := sparse.DiagonalMatrix(vec.NewFrom([]float64{2, 5}))
	p, err := NewSSOR(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := vec.NewFrom([]float64{2, 5})
	dst := vec.New(2)
	p.Apply(dst, r)
	if math.Abs(dst[0]-1) > 1e-14 || math.Abs(dst[1]-1) > 1e-14 {
		t.Fatalf("SSOR diag apply got %v", dst)
	}
}

func TestSSORRejectsBadOmega(t *testing.T) {
	a := sparse.Poisson1D(4)
	for _, w := range []float64{0, -1, 2, 2.5} {
		if _, err := NewSSOR(a, w); err == nil {
			t.Fatalf("expected error for w=%g", w)
		}
	}
}

func TestSSORRejectsBadDiagonal(t *testing.T) {
	coo := sparse.NewCOO(2)
	coo.Add(0, 0, -2)
	coo.Add(1, 1, 1)
	if _, err := NewSSOR(coo.ToCSR(), 1); err == nil {
		t.Fatal("expected error for negative diagonal")
	}
}

func TestNeumannDegreeZeroIsScaledIdentity(t *testing.T) {
	a := sparse.Poisson1D(5)
	p, err := NewNeumann(a, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := vec.NewFrom([]float64{4, 0, 0, 0, 0})
	dst := vec.New(5)
	p.Apply(dst, r)
	if math.Abs(dst[0]-1) > 1e-14 {
		t.Fatalf("degree-0 Neumann: got %v, want r/lambdaMax", dst[0])
	}
}

func TestNeumannImprovesWithDegree(t *testing.T) {
	// Higher-degree Neumann should reduce ||M^{-1}A x - x||.
	a := sparse.Poisson1D(16)
	x := vec.New(16)
	vec.Random(x, 3)
	ax := vec.New(16)
	a.MulVec(ax, x)
	lambdaMax := 4.0 // 2-2cos(k pi/(m+1)) < 4
	prevErr := math.Inf(1)
	for _, deg := range []int{0, 2, 6, 12} {
		p, err := NewNeumann(a, deg, lambdaMax)
		if err != nil {
			t.Fatal(err)
		}
		z := vec.New(16)
		p.Apply(z, ax)
		diff := vec.New(16)
		vec.Sub(diff, z, x)
		e := vec.Norm2(diff)
		if e > prevErr*1.05 {
			t.Fatalf("Neumann degree %d error %g did not improve on %g", deg, e, prevErr)
		}
		prevErr = e
	}
	if prevErr > 0.7*vec.Norm2(x) {
		t.Fatalf("high-degree Neumann still poor: err=%g", prevErr)
	}
}

func TestNeumannErrors(t *testing.T) {
	a := sparse.Poisson1D(4)
	if _, err := NewNeumann(a, -1, 4); err == nil {
		t.Fatal("expected degree error")
	}
	if _, err := NewNeumann(a, 2, 0); err == nil {
		t.Fatal("expected lambdaMax error")
	}
}

func TestChebyshevApproximatesInverse(t *testing.T) {
	// On a diagonal matrix with known spectrum, Chebyshev of moderate
	// degree should approximately invert A.
	n := 20
	a := sparse.PrescribedSpectrum(n, 10) // eigenvalues in [1,10]
	p, err := NewChebyshev(a, 8, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	x := vec.New(n)
	vec.Random(x, 11)
	ax := vec.New(n)
	a.MulVec(ax, x)
	z := vec.New(n)
	p.Apply(z, ax)
	diff := vec.New(n)
	vec.Sub(diff, z, x)
	if rel := vec.Norm2(diff) / vec.Norm2(x); rel > 0.05 {
		t.Fatalf("Chebyshev(8) relative error %g too large", rel)
	}
}

func TestChebyshevErrors(t *testing.T) {
	a := sparse.Poisson1D(4)
	if _, err := NewChebyshev(a, -1, 1, 2); err == nil {
		t.Fatal("expected degree error")
	}
	if _, err := NewChebyshev(a, 2, 0, 2); err == nil {
		t.Fatal("expected lambdaMin error")
	}
	if _, err := NewChebyshev(a, 2, 2, 2); err == nil {
		t.Fatal("expected interval error")
	}
}

func TestPolynomialCoeffsCopied(t *testing.T) {
	a := sparse.Poisson1D(4)
	p, err := NewNeumann(a, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	c := p.Coeffs()
	c[0] = 999
	if p.Coeffs()[0] == 999 {
		t.Fatal("Coeffs exposes internal storage")
	}
}

// Property: Jacobi preconditioning of a diagonal system is an exact solve.
func TestPropJacobiExactOnDiagonal(t *testing.T) {
	f := func(seed uint64, szRaw uint8) bool {
		n := int(szRaw)%30 + 1
		d := vec.New(n)
		vec.Random(d, seed)
		for i := range d {
			d[i] = math.Abs(d[i]) + 0.5 // strictly positive
		}
		a := sparse.DiagonalMatrix(d)
		p, err := NewJacobi(a)
		if err != nil {
			return false
		}
		x := vec.New(n)
		vec.Random(x, seed+1)
		b := vec.New(n)
		a.MulVec(b, x)
		z := vec.New(n)
		p.Apply(z, b)
		return vec.EqualTol(z, x, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: SSOR application is symmetric: <M^{-1}u, v> == <u, M^{-1}v>.
func TestPropSSORSelfAdjoint(t *testing.T) {
	f := func(seed uint64, mRaw uint8, wRaw uint8) bool {
		m := int(mRaw)%10 + 3
		w := 0.2 + 1.6*float64(wRaw)/255
		a := sparse.Poisson1D(m)
		p, err := NewSSOR(a, w)
		if err != nil {
			return false
		}
		u := vec.New(m)
		v := vec.New(m)
		vec.Random(u, seed)
		vec.Random(v, seed^0x5555)
		pu := vec.New(m)
		pv := vec.New(m)
		p.Apply(pu, u)
		p.Apply(pv, v)
		lhs := vec.Dot(pu, v)
		rhs := vec.Dot(u, pv)
		return math.Abs(lhs-rhs) <= 1e-10*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
