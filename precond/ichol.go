package precond

import (
	"fmt"
	"math"

	"vrcg/internal/vec"
	"vrcg/sparse"
)

// IC0 is the zero-fill incomplete Cholesky preconditioner: M = L L^T
// where L has the sparsity of A's lower triangle. For SPD M-matrices
// (the discrete Laplacians in this repository) the factorization exists
// and PCG with IC(0) is the classical workhorse the paper's
// preconditioning remark points at.
type IC0 struct {
	n      int
	rowPtr []int
	colIdx []int // column indices per row, ascending, diagonal last
	vals   []float64
	diag   []int // position of the diagonal entry in each row
	tmp    vec.Vector
}

// NewIC0 computes the IC(0) factorization of the symmetric positive
// definite matrix a. It returns an error if a pivot becomes non-positive
// (the factorization does not exist for this sparsity; shift the matrix
// or use a different preconditioner).
func NewIC0(a *sparse.CSR) (*IC0, error) {
	n := a.Dim()
	ic := &IC0{n: n, rowPtr: make([]int, n+1), diag: make([]int, n), tmp: vec.New(n)}

	// Collect the lower-triangular pattern (including diagonal).
	for i := 0; i < n; i++ {
		count := 0
		hasDiag := false
		a.ScanRow(i, func(j int, _ float64) {
			if j < i {
				count++
			} else if j == i {
				hasDiag = true
			}
		})
		if !hasDiag {
			return nil, fmt.Errorf("precond: row %d has no diagonal entry", i)
		}
		ic.rowPtr[i+1] = ic.rowPtr[i] + count + 1
	}
	nnz := ic.rowPtr[n]
	ic.colIdx = make([]int, nnz)
	ic.vals = make([]float64, nnz)
	for i := 0; i < n; i++ {
		p := ic.rowPtr[i]
		a.ScanRow(i, func(j int, v float64) {
			if j < i {
				ic.colIdx[p] = j
				ic.vals[p] = v
				p++
			}
		})
		// Diagonal last (ScanRow is ascending so this keeps order).
		ic.colIdx[p] = i
		ic.vals[p] = a.At(i, i)
		ic.diag[i] = p
	}

	// Row-oriented IC(0): for each row i, update against previous rows
	// restricted to the existing pattern.
	// l[i][j] = (a[i][j] - sum_k l[i][k] l[j][k]) / l[j][j], k < j
	// l[i][i] = sqrt(a[i][i] - sum_k l[i][k]^2)
	find := func(row, col int) int {
		lo, hi := ic.rowPtr[row], ic.rowPtr[row+1]
		for p := lo; p < hi; p++ {
			if ic.colIdx[p] == col {
				return p
			}
		}
		return -1
	}
	for i := 0; i < n; i++ {
		for p := ic.rowPtr[i]; p < ic.diag[i]; p++ {
			j := ic.colIdx[p]
			s := ic.vals[p]
			// Dot of row i and row j patterns below column j.
			for q := ic.rowPtr[i]; q < p; q++ {
				k := ic.colIdx[q]
				if jq := find(j, k); jq >= 0 {
					s -= ic.vals[q] * ic.vals[jq]
				}
			}
			ic.vals[p] = s / ic.vals[ic.diag[j]]
		}
		d := ic.vals[ic.diag[i]]
		for q := ic.rowPtr[i]; q < ic.diag[i]; q++ {
			d -= ic.vals[q] * ic.vals[q]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("precond: IC(0) pivot %g at row %d: %w", d, i, ErrNotFactorizable)
		}
		ic.vals[ic.diag[i]] = math.Sqrt(d)
	}
	return ic, nil
}

// ErrNotFactorizable reports that IC(0) broke down on this matrix.
var ErrNotFactorizable = fmt.Errorf("precond: matrix has no IC(0) factorization")

// Dim returns the operator order.
func (ic *IC0) Dim() int { return ic.n }

// Apply computes dst = (L L^T)^{-1} r by forward and backward
// substitution over the triangular factor.
func (ic *IC0) Apply(dst, r vec.Vector) {
	if len(dst) != ic.n || len(r) != ic.n {
		panic("precond: IC0 dimension mismatch")
	}
	y := ic.tmp
	// Forward solve L y = r.
	for i := 0; i < ic.n; i++ {
		s := r[i]
		for p := ic.rowPtr[i]; p < ic.diag[i]; p++ {
			s -= ic.vals[p] * y[ic.colIdx[p]]
		}
		y[i] = s / ic.vals[ic.diag[i]]
	}
	// Backward solve L^T dst = y: process rows in reverse, scattering.
	copy(dst, y)
	for i := ic.n - 1; i >= 0; i-- {
		dst[i] /= ic.vals[ic.diag[i]]
		xi := dst[i]
		for p := ic.rowPtr[i]; p < ic.diag[i]; p++ {
			dst[ic.colIdx[p]] -= ic.vals[p] * xi
		}
	}
}

var _ Preconditioner = (*IC0)(nil)
