// Package precond provides the symmetric preconditioners referenced in
// the paper's introduction ("can be quite efficient when coupled with
// various preconditioning techniques"): Jacobi, SSOR, incomplete
// Cholesky (IC0), and matrix polynomial preconditioners. All are
// symmetric positive definite operators M^{-1}, applied as z = M^{-1} r,
// and therefore preserve the CG theory for the preconditioned system.
//
// The package is public so solve.WithPreconditioner is usable from
// external code without copying implementations: every type here
// satisfies the solve.Preconditioner interface directly (Apply is
// stated on vec.Vector, an alias of []float64). Pointwise
// preconditioners additionally implement PoolApplier and run on the
// shared worker pool inside pooled solves.
//
// Concurrency: Identity and Jacobi write only dst and may be shared
// across goroutines; SSOR and IC0 use internal scratch in Apply, so
// one instance must not be applied concurrently — build one per
// goroutine, or serialize Apply behind a lock when a single
// factorization is shared (as solve.Batch workers share the options
// they fork from).
//
// The package was promoted from internal/precond; internal/precond
// remains as a deprecated alias-only shim.
package precond

import (
	"errors"
	"fmt"
	"math"

	"vrcg/internal/vec"
	"vrcg/sparse"
)

// ErrUnknownName is returned by ByName for names it does not map.
var ErrUnknownName = errors.New("precond: unknown preconditioner name")

// ByName builds one of the standard preconditioners from a by its CLI/
// wire name — the single vocabulary cmd/cgsolve and the solve server
// share: "identity", "jacobi", "ssor" (w = 1.5), or "ic0". Unknown
// names wrap ErrUnknownName.
func ByName(name string, a *sparse.CSR) (Preconditioner, error) {
	switch name {
	case "identity":
		return NewIdentity(a.Dim()), nil
	case "jacobi":
		return NewJacobi(a)
	case "ssor":
		return NewSSOR(a, 1.5)
	case "ic0":
		return NewIC0(a)
	default:
		return nil, fmt.Errorf("%w: %q (want identity|jacobi|ssor|ic0)", ErrUnknownName, name)
	}
}

// Preconditioner applies z = M^{-1} r. Implementations must be symmetric
// positive definite so preconditioned CG remains well defined.
type Preconditioner interface {
	// Dim returns the operator order.
	Dim() int
	// Apply computes dst = M^{-1} r. dst and r must not alias.
	Apply(dst, r vec.Vector)
}

// PoolApplier is a Preconditioner that can apply itself over a worker
// pool. Pointwise preconditioners (Identity, Jacobi) implement it;
// triangular-solve preconditioners (SSOR, IC0) are inherently sequential
// across rows and do not.
type PoolApplier interface {
	Preconditioner
	// ApplyPool computes dst = M^{-1} r using pooled kernels.
	ApplyPool(pool *vec.Pool, dst, r vec.Vector)
}

// Identity is the trivial preconditioner M = I.
type Identity struct{ N int }

// NewIdentity returns the identity preconditioner of order n.
func NewIdentity(n int) *Identity { return &Identity{N: n} }

// Dim returns the operator order.
func (p *Identity) Dim() int { return p.N }

// Apply copies r into dst.
func (p *Identity) Apply(dst, r vec.Vector) {
	if len(dst) != p.N || len(r) != p.N {
		panic("precond: Identity dimension mismatch")
	}
	vec.Copy(dst, r)
}

// ApplyPool is Apply; a copy does not benefit from the pool.
func (p *Identity) ApplyPool(_ *vec.Pool, dst, r vec.Vector) { p.Apply(dst, r) }

// Jacobi is diagonal scaling: M = diag(A).
type Jacobi struct {
	invDiag vec.Vector
}

// NewJacobi extracts the diagonal of a and returns the Jacobi
// preconditioner. It returns an error if any diagonal entry is not
// strictly positive (A must be SPD).
func NewJacobi(a *sparse.CSR) (*Jacobi, error) {
	d := vec.New(a.Dim())
	a.Diag(d)
	inv := vec.New(a.Dim())
	for i, v := range d {
		if v <= 0 {
			return nil, fmt.Errorf("precond: non-positive diagonal entry %g at row %d", v, i)
		}
		inv[i] = 1 / v
	}
	return &Jacobi{invDiag: inv}, nil
}

// Dim returns the operator order.
func (p *Jacobi) Dim() int { return len(p.invDiag) }

// Apply computes dst = diag(A)^{-1} r.
func (p *Jacobi) Apply(dst, r vec.Vector) {
	if len(dst) != p.Dim() || len(r) != p.Dim() {
		panic("precond: Jacobi dimension mismatch")
	}
	vec.MulElem(dst, r, p.invDiag)
}

// ApplyPool computes dst = diag(A)^{-1} r with the pooled elementwise
// multiply.
func (p *Jacobi) ApplyPool(pool *vec.Pool, dst, r vec.Vector) {
	if len(dst) != p.Dim() || len(r) != p.Dim() {
		panic("precond: Jacobi dimension mismatch")
	}
	vec.PoolMulElem(pool, dst, r, p.invDiag)
}

// SSOR is the symmetric successive over-relaxation preconditioner
//
//	M = (D/w + L) * (w/(2-w)) * D^{-1} * (D/w + U)
//
// for A = L + D + U with relaxation parameter 0 < w < 2. Applying M^{-1}
// is a forward triangular solve, a diagonal scale, and a backward
// triangular solve over the CSR structure.
type SSOR struct {
	a     *sparse.CSR
	w     float64
	diag  vec.Vector
	tmp   vec.Vector
	scale float64 // (2-w)/w
}

// NewSSOR builds the SSOR preconditioner for symmetric a with relaxation
// parameter w in (0, 2).
func NewSSOR(a *sparse.CSR, w float64) (*SSOR, error) {
	if w <= 0 || w >= 2 {
		return nil, fmt.Errorf("precond: SSOR relaxation parameter %g outside (0,2)", w)
	}
	d := vec.New(a.Dim())
	a.Diag(d)
	for i, v := range d {
		if v <= 0 {
			return nil, fmt.Errorf("precond: non-positive diagonal entry %g at row %d", v, i)
		}
	}
	return &SSOR{a: a, w: w, diag: d, tmp: vec.New(a.Dim()), scale: (2 - w) / w}, nil
}

// Dim returns the operator order.
func (p *SSOR) Dim() int { return p.a.Dim() }

// Apply computes dst = M^{-1} r via forward solve, diagonal scale,
// backward solve.
func (p *SSOR) Apply(dst, r vec.Vector) {
	n := p.Dim()
	if len(dst) != n || len(r) != n {
		panic("precond: SSOR dimension mismatch")
	}
	w := p.w
	y := p.tmp
	// Forward solve (D/w + L) y = r, traversing rows in order and using
	// only already-computed components (columns j < i).
	for i := 0; i < n; i++ {
		s := r[i]
		p.a.ScanRow(i, func(j int, v float64) {
			if j < i {
				s -= v * y[j]
			}
		})
		y[i] = s * w / p.diag[i]
	}
	// Scale: y <- ((2-w)/w) * D * y
	for i := 0; i < n; i++ {
		y[i] *= p.scale * p.diag[i]
	}
	// Backward solve (D/w + U) dst = y.
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		p.a.ScanRow(i, func(j int, v float64) {
			if j > i {
				s -= v * dst[j]
			}
		})
		dst[i] = s * w / p.diag[i]
	}
}

// Polynomial preconditions with a fixed polynomial in A:
// M^{-1} = q(A) where q approximates A^{-1}. Supported constructions are
// the truncated Neumann series and Chebyshev polynomials over a spectral
// interval.
type Polynomial struct {
	a      sparse.Matrix
	coeffs []float64 // q(A) = sum_i coeffs[i] A^i
	t1, t2 vec.Vector
}

// Dim returns the operator order.
func (p *Polynomial) Dim() int { return p.a.Dim() }

// Coeffs returns a copy of the polynomial coefficients (degree ascending).
func (p *Polynomial) Coeffs() []float64 {
	out := make([]float64, len(p.coeffs))
	copy(out, p.coeffs)
	return out
}

// Apply computes dst = q(A) r by Horner's rule using two work vectors.
func (p *Polynomial) Apply(dst, r vec.Vector) {
	n := p.Dim()
	if len(dst) != n || len(r) != n {
		panic("precond: Polynomial dimension mismatch")
	}
	k := len(p.coeffs) - 1
	// Horner: acc = c_k r; acc = A*acc + c_i r
	vec.ScaleTo(p.t1, p.coeffs[k], r)
	for i := k - 1; i >= 0; i-- {
		p.a.MulVec(p.t2, p.t1)
		vec.AxpyTo(p.t1, p.coeffs[i], r, p.t2)
	}
	vec.Copy(dst, p.t1)
}

// NewNeumann builds the truncated Neumann-series preconditioner of the
// scaled operator: with s chosen so the spectrum of sA lies in (0,2),
// A^{-1} ≈ s * sum_{i=0..deg} (I - sA)^i. lambdaMax must be an upper
// bound on the largest eigenvalue of A.
func NewNeumann(a sparse.Matrix, deg int, lambdaMax float64) (*Polynomial, error) {
	if deg < 0 {
		return nil, fmt.Errorf("precond: Neumann degree %d < 0", deg)
	}
	if lambdaMax <= 0 {
		return nil, fmt.Errorf("precond: lambdaMax %g must be positive", lambdaMax)
	}
	s := 1 / lambdaMax
	// sum_{i<=deg} (I - sA)^i expanded into coefficients of A^j:
	// (I - sA)^i = sum_j C(i,j) (-s)^j A^j
	coeffs := make([]float64, deg+1)
	for i := 0; i <= deg; i++ {
		binom := 1.0
		pow := 1.0
		for j := 0; j <= i; j++ {
			coeffs[j] += binom * pow
			// next: binom C(i,j+1) = C(i,j)*(i-j)/(j+1), pow *= (-s)
			binom = binom * float64(i-j) / float64(j+1)
			pow *= -s
		}
	}
	for j := range coeffs {
		coeffs[j] *= s
	}
	return &Polynomial{a: a, coeffs: coeffs, t1: vec.New(a.Dim()), t2: vec.New(a.Dim())}, nil
}

// NewChebyshev builds the degree-deg Chebyshev polynomial preconditioner
// for a spectrum enclosed in [lambdaMin, lambdaMax], the minimax-optimal
// polynomial approximation to A^{-1} on that interval.
func NewChebyshev(a sparse.Matrix, deg int, lambdaMin, lambdaMax float64) (*Polynomial, error) {
	if deg < 0 {
		return nil, fmt.Errorf("precond: Chebyshev degree %d < 0", deg)
	}
	if lambdaMin <= 0 || lambdaMax <= lambdaMin {
		return nil, fmt.Errorf("precond: invalid spectral interval [%g, %g]", lambdaMin, lambdaMax)
	}
	// Build q(x) ≈ 1/x as a polynomial interpolating 1/x at the deg+1
	// Chebyshev nodes of [lambdaMin, lambdaMax], expressed in monomial
	// coefficients via Newton's divided differences then expansion.
	m := deg + 1
	nodes := make([]float64, m)
	for i := 0; i < m; i++ {
		theta := math.Pi * (2*float64(i) + 1) / (2 * float64(m))
		nodes[i] = 0.5*(lambdaMax+lambdaMin) + 0.5*(lambdaMax-lambdaMin)*math.Cos(theta)
	}
	// Divided differences for f(x) = 1/x.
	dd := make([]float64, m)
	for i := 0; i < m; i++ {
		dd[i] = 1 / nodes[i]
	}
	for level := 1; level < m; level++ {
		for i := m - 1; i >= level; i-- {
			dd[i] = (dd[i] - dd[i-1]) / (nodes[i] - nodes[i-level])
		}
	}
	// Expand Newton form to monomial coefficients.
	coeffs := make([]float64, m)
	// poly = dd[m-1]; then poly = poly*(x - nodes[i]) + dd[i]
	coeffs[0] = dd[m-1]
	degSoFar := 0
	for i := m - 2; i >= 0; i-- {
		// multiply by (x - nodes[i]): shift up and subtract node*coeff
		for j := degSoFar + 1; j >= 1; j-- {
			coeffs[j] = coeffs[j-1] - nodes[i]*coeffs[j]
		}
		coeffs[0] = -nodes[i]*coeffs[0] + dd[i]
		degSoFar++
	}
	return &Polynomial{a: a, coeffs: coeffs, t1: vec.New(a.Dim()), t2: vec.New(a.Dim())}, nil
}

var (
	_ Preconditioner = (*Identity)(nil)
	_ Preconditioner = (*Jacobi)(nil)
	_ Preconditioner = (*SSOR)(nil)
	_ Preconditioner = (*Polynomial)(nil)
	_ PoolApplier    = (*Identity)(nil)
	_ PoolApplier    = (*Jacobi)(nil)
)
