package precond_test

import (
	"errors"
	"math"
	"testing"

	"vrcg/internal/krylov"
	"vrcg/internal/vec"
	"vrcg/precond"
	"vrcg/sparse"
)

// icDense materializes the preconditioner action as a dense matrix by
// applying it to unit vectors.
func icDense(p precond.Preconditioner) *sparse.Dense {
	n := p.Dim()
	d := sparse.NewDense(n)
	e := vec.New(n)
	out := vec.New(n)
	for j := 0; j < n; j++ {
		vec.Zero(e)
		e[j] = 1
		p.Apply(out, e)
		for i := 0; i < n; i++ {
			d.Set(i, j, out[i])
		}
	}
	return d
}

func TestIC0ExactForTridiagonal(t *testing.T) {
	// A tridiagonal SPD matrix's Cholesky factor is bidiagonal, which is
	// inside the IC(0) pattern: the "incomplete" factorization is exact
	// and M^{-1} A = I.
	a := sparse.Poisson1D(20)
	ic, err := precond.NewIC0(a)
	if err != nil {
		t.Fatal(err)
	}
	x := vec.New(20)
	vec.Random(x, 1)
	ax := vec.New(20)
	a.MulVec(ax, x)
	z := vec.New(20)
	ic.Apply(z, ax)
	if !vec.EqualTol(z, x, 1e-10) {
		t.Fatal("IC(0) on tridiagonal should invert exactly")
	}
}

func TestIC0SymmetricPositive(t *testing.T) {
	a := sparse.Poisson2D(6)
	ic, err := precond.NewIC0(a)
	if err != nil {
		t.Fatal(err)
	}
	d := icDense(ic)
	if !d.IsSymmetric(1e-10) {
		t.Fatal("IC(0) application not symmetric")
	}
	out := vec.New(a.Dim())
	for trial := 0; trial < 5; trial++ {
		r := vec.New(a.Dim())
		vec.Random(r, uint64(trial+1))
		ic.Apply(out, r)
		if q := vec.Dot(r, out); q <= 0 {
			t.Fatalf("IC(0) quadratic form non-positive: %v", q)
		}
	}
}

func TestIC0AcceleratesPCG(t *testing.T) {
	a := sparse.Poisson2D(24)
	b := vec.New(a.Dim())
	vec.Random(b, 2)
	plain, err := krylov.CG(a, b, krylov.Options{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	ic, err := precond.NewIC0(a)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := krylov.PCG(a, ic, b, krylov.Options{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if !pre.Converged {
		t.Fatal("PCG-IC0 did not converge")
	}
	if pre.Iterations >= plain.Iterations {
		t.Fatalf("IC(0) PCG (%d) not faster than CG (%d)", pre.Iterations, plain.Iterations)
	}
	// IC(0) should also beat Jacobi on a Laplacian.
	jac, err := precond.NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	jacRes, err := krylov.PCG(a, jac, b, krylov.Options{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if pre.Iterations >= jacRes.Iterations {
		t.Fatalf("IC(0) (%d iters) not better than Jacobi (%d iters)", pre.Iterations, jacRes.Iterations)
	}
}

func TestIC0BreaksDownGracefully(t *testing.T) {
	// A symmetric matrix with positive diagonal that is NOT positive
	// definite: IC(0) must report a pivot failure, not NaN silently.
	coo := sparse.NewCOO(2)
	coo.Add(0, 0, 1)
	coo.Add(1, 1, 1)
	coo.AddSym(0, 1, 2) // eigenvalues -1 and 3
	if _, err := precond.NewIC0(coo.ToCSR()); !errors.Is(err, precond.ErrNotFactorizable) {
		t.Fatalf("want precond.ErrNotFactorizable, got %v", err)
	}
}

func TestIC0MissingDiagonal(t *testing.T) {
	coo := sparse.NewCOO(2)
	coo.Add(0, 0, 1)
	coo.AddSym(0, 1, 0.1)
	// row 1 has no diagonal entry
	if _, err := precond.NewIC0(coo.ToCSR()); err == nil {
		t.Fatal("expected missing-diagonal error")
	}
}

func TestIC0FactorResidualSmallOnPattern(t *testing.T) {
	// For IC(0), (L L^T)[i][j] == A[i][j] on A's sparsity pattern.
	a := sparse.Poisson2D(5)
	n := a.Dim()
	ic, err := precond.NewIC0(a)
	if err != nil {
		t.Fatal(err)
	}
	// Build L L^T densely via Apply on unit vectors is M^{-1}; instead
	// verify via solving: for any x, M^{-1}(A x) should differ from x
	// only through fill-in terms — weak check: relative error bounded.
	x := vec.New(n)
	vec.Random(x, 3)
	ax := vec.New(n)
	a.MulVec(ax, x)
	z := vec.New(n)
	ic.Apply(z, ax)
	diff := vec.New(n)
	vec.Sub(diff, z, x)
	if rel := vec.Norm2(diff) / vec.Norm2(x); rel > 0.5 {
		t.Fatalf("IC(0) too far from A on its pattern: rel %g", rel)
	}
	if math.IsNaN(vec.Norm2(z)) {
		t.Fatal("NaN in IC(0) application")
	}
}
