// Benchmarks for the warm-started sequence tier, persisted by
// `make bench` into BENCH_sequence.json: the iterations-per-step and
// time-per-step gap between cold solves (fresh start every time) and a
// solve.Sequence stepping through a slowly drifting chain of systems —
// the outer-optimization-loop regime /v1/sequence serves.
//
// Run:  go test -bench=Sequence -benchmem
package vrcg_test

import (
	"math/rand"
	"testing"

	"vrcg/solve"
	"vrcg/sparse"
)

// BenchmarkSequenceColdVsWarm pins the warm-start payoff: "cold" pays a
// full from-zero CG solve per step, "warm" reuses the previous solution
// as the initial guess while the right-hand side drifts by ~1e-6 per
// step (an outer loop near its fixed point). The iters/step metric is
// the comparison that matters — warm steps must land strictly below
// cold ones.
func BenchmarkSequenceColdVsWarm(b *testing.B) {
	a, rhs := benchSystem(32)

	b.Run("cold", func(b *testing.B) {
		q, err := solve.NewSequence("cg", a, solve.WithTol(1e-8))
		if err != nil {
			b.Fatal(err)
		}
		iters := 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q.Reset() // forget the previous solution: every step is cold
			res, err := q.Step(rhs)
			if err != nil {
				b.Fatal(err)
			}
			iters += res.Iterations
		}
		b.ReportMetric(float64(iters)/float64(b.N), "iters/step")
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "solves/s")
	})

	b.Run("warm", func(b *testing.B) {
		q, err := solve.NewSequence("cg", a, solve.WithTol(1e-8))
		if err != nil {
			b.Fatal(err)
		}
		// Prime the sequence: the cold first step is the setup cost the
		// warm regime amortizes, not part of the per-step measurement.
		if _, err := q.Step(rhs); err != nil {
			b.Fatal(err)
		}
		drift := append([]float64(nil), rhs...)
		iters := 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			scale := 1 + 1e-6*float64(i%7+1)
			for j := range drift {
				drift[j] = rhs[j] * scale
			}
			res, err := q.Step(drift)
			if err != nil {
				b.Fatal(err)
			}
			iters += res.Iterations
		}
		b.ReportMetric(float64(iters)/float64(b.N), "iters/step")
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "solves/s")
	})
}

// BenchmarkSequenceICPShaped is the registration workload the tier was
// built for (examples/icp over HTTP, here at the library layer): a tall
// skinny m×6 least-squares Jacobian whose values drift a little every
// outer iteration, re-solved by a warm LSQR sequence with in-place
// value updates. "cold" resets the sequence every step for the
// comparison baseline.
func BenchmarkSequenceICPShaped(b *testing.B) {
	const rows, cols = 400, 6
	rng := rand.New(rand.NewSource(11))
	base := make([]float64, rows*cols)
	for i := range base {
		base[i] = rng.NormFloat64()
	}
	a := sparse.RectFromDense(rows, cols, base)
	rhs := make([]float64, rows)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	vals := append([]float64(nil), a.Values()...)

	run := func(b *testing.B, cold bool) {
		q, err := solve.NewSequence("lsqr", a, solve.WithTol(1e-10))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := q.Step(rhs); err != nil {
			b.Fatal(err)
		}
		iters := 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			drift := 1 + 1e-8*float64(i%5+1)
			for j := range vals {
				vals[j] = base[j] * drift
			}
			if err := q.UpdateValues(vals); err != nil {
				b.Fatal(err)
			}
			if cold {
				q.Reset()
			}
			res, err := q.Step(rhs)
			if err != nil {
				b.Fatal(err)
			}
			iters += res.Iterations
		}
		b.ReportMetric(float64(iters)/float64(b.N), "iters/step")
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "solves/s")
	}
	b.Run("cold", func(b *testing.B) { run(b, true) })
	b.Run("warm", func(b *testing.B) { run(b, false) })
}
