package sparse

import (
	"math"
	"testing"
	"testing/quick"

	"vrcg/internal/vec"
)

func TestDenseBasics(t *testing.T) {
	d := NewDense(2)
	d.Set(0, 0, 2)
	d.Set(0, 1, 1)
	d.Set(1, 0, 1)
	d.Set(1, 1, 3)
	if d.Dim() != 2 {
		t.Fatalf("Dim = %d", d.Dim())
	}
	if d.At(0, 1) != 1 {
		t.Fatalf("At = %v", d.At(0, 1))
	}
	x := vec.NewFrom([]float64{1, 2})
	y := vec.New(2)
	d.MulVec(y, x)
	if y[0] != 4 || y[1] != 7 {
		t.Fatalf("MulVec got %v", y)
	}
	if !d.IsSymmetric(0) {
		t.Fatal("symmetric matrix reported asymmetric")
	}
	if d.NNZ() != 4 || d.MaxRowNonzeros() != 2 {
		t.Fatalf("NNZ=%d MaxRow=%d", d.NNZ(), d.MaxRowNonzeros())
	}
}

func TestNewDenseFrom(t *testing.T) {
	d := NewDenseFrom([][]float64{{1, 0}, {0, 2}})
	if d.At(1, 1) != 2 {
		t.Fatal("NewDenseFrom wrong entry")
	}
}

func TestDenseAsymmetric(t *testing.T) {
	d := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	if d.IsSymmetric(0.5) {
		t.Fatal("asymmetric matrix reported symmetric")
	}
	if !d.IsSymmetric(2) {
		t.Fatal("tolerance not honored")
	}
}

func TestCOOToCSRSumsDuplicates(t *testing.T) {
	coo := NewCOO(3)
	coo.Add(0, 1, 1)
	coo.Add(0, 1, 2)
	coo.Add(2, 2, 5)
	csr := coo.ToCSR()
	if csr.At(0, 1) != 3 {
		t.Fatalf("duplicate sum = %v, want 3", csr.At(0, 1))
	}
	if csr.At(2, 2) != 5 {
		t.Fatalf("entry = %v", csr.At(2, 2))
	}
	if csr.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", csr.NNZ())
	}
}

func TestCOOCancellationDropsEntry(t *testing.T) {
	coo := NewCOO(2)
	coo.Add(0, 0, 1)
	coo.Add(0, 0, -1)
	coo.Add(1, 1, 2)
	csr := coo.ToCSR()
	if csr.NNZ() != 1 {
		t.Fatalf("cancelled entry kept: NNZ = %d", csr.NNZ())
	}
}

func TestCOOAddSym(t *testing.T) {
	coo := NewCOO(3)
	coo.AddSym(0, 1, 4)
	coo.AddSym(2, 2, 7)
	csr := coo.ToCSR()
	if csr.At(0, 1) != 4 || csr.At(1, 0) != 4 {
		t.Fatal("AddSym did not mirror off-diagonal")
	}
	if csr.At(2, 2) != 7 {
		t.Fatal("AddSym doubled diagonal")
	}
}

func TestCOOOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCOO(2).Add(2, 0, 1)
}

func TestCSRMulVecMatchesDense(t *testing.T) {
	a := RandomSPD(40, 6, 1)
	d := a.ToDense()
	x := vec.New(40)
	vec.Random(x, 5)
	y1 := vec.New(40)
	y2 := vec.New(40)
	a.MulVec(y1, x)
	d.MulVec(y2, x)
	if !vec.EqualTol(y1, y2, 1e-12) {
		t.Fatal("CSR MulVec differs from dense")
	}
}

func TestCSRDiag(t *testing.T) {
	a := Poisson1D(4)
	d := vec.New(4)
	a.Diag(d)
	for i, v := range d {
		if v != 2 {
			t.Fatalf("diag[%d] = %v", i, v)
		}
	}
}

func TestCSRSymmetryAndDominance(t *testing.T) {
	a := RandomSPD(30, 4, 7)
	if !a.IsSymmetric(0) {
		t.Fatal("RandomSPD not symmetric")
	}
	if !a.IsDiagonallyDominant() {
		t.Fatal("RandomSPD not diagonally dominant")
	}
}

func TestNewCSRSortsRows(t *testing.T) {
	// Row 0 has entries at columns 2 then 0, deliberately unsorted.
	m := NewCSR(3, []int{0, 2, 2, 3}, []int{2, 0, 1}, []float64{5, 1, 9})
	if m.At(0, 0) != 1 || m.At(0, 2) != 5 || m.At(2, 1) != 9 {
		t.Fatal("NewCSR mis-sorted rows")
	}
}

func TestDIAMulVecMatchesCSR(t *testing.T) {
	n := 50
	diag := make([]float64, n)
	up := make([]float64, n)
	down := make([]float64, n)
	for i := range diag {
		diag[i] = 4
		up[i] = -1
		down[i] = -1
	}
	dia := NewDIA(n, map[int][]float64{0: diag, 1: up, -1: down})
	csr := dia.ToCSR()
	x := vec.New(n)
	vec.Random(x, 3)
	y1 := vec.New(n)
	y2 := vec.New(n)
	dia.MulVec(y1, x)
	csr.MulVec(y2, x)
	if !vec.EqualTol(y1, y2, 1e-13) {
		t.Fatal("DIA MulVec differs from CSR")
	}
	if dia.MaxRowNonzeros() != 3 {
		t.Fatalf("DIA MaxRowNonzeros = %d", dia.MaxRowNonzeros())
	}
	if got, want := dia.NNZ(), csr.NNZ(); got != want {
		t.Fatalf("DIA NNZ = %d, CSR = %d", got, want)
	}
	if dia.At(0, 1) != -1 || dia.At(0, 0) != 4 || dia.At(0, 2) != 0 {
		t.Fatal("DIA At wrong")
	}
	offs := dia.Offsets()
	if len(offs) != 3 || offs[0] != -1 || offs[2] != 1 {
		t.Fatalf("Offsets = %v", offs)
	}
}

func TestStencilDegreesAndDims(t *testing.T) {
	cases := []struct {
		kind StencilKind
		d    int
		dims int
	}{
		{Stencil1D3, 3, 1},
		{Stencil2D5, 5, 2},
		{Stencil2D9, 9, 2},
		{Stencil3D7, 7, 3},
		{Stencil3D27, 27, 3},
	}
	for _, c := range cases {
		if c.kind.Degree() != c.d {
			t.Errorf("%v Degree = %d, want %d", c.kind, c.kind.Degree(), c.d)
		}
		if c.kind.Dims() != c.dims {
			t.Errorf("%v Dims = %d, want %d", c.kind, c.kind.Dims(), c.dims)
		}
		if c.kind.String() == "" {
			t.Errorf("%v String empty", c.kind)
		}
	}
}

func TestStencilMulMatchesCSRAllKinds(t *testing.T) {
	for _, kind := range []StencilKind{Stencil1D3, Stencil2D5, Stencil2D9, Stencil3D7, Stencil3D27} {
		m := 5
		st := NewStencil(kind, m)
		csr := st.ToCSR()
		if csr.Dim() != st.Dim() {
			t.Fatalf("%v: dim mismatch", kind)
		}
		x := vec.New(st.Dim())
		vec.Random(x, uint64(kind))
		y1 := vec.New(st.Dim())
		y2 := vec.New(st.Dim())
		st.MulVec(y1, x)
		csr.MulVec(y2, x)
		if !vec.EqualTol(y1, y2, 1e-12) {
			t.Fatalf("%v: stencil MulVec differs from CSR expansion", kind)
		}
		if !csr.IsSymmetric(1e-12) {
			t.Fatalf("%v: not symmetric", kind)
		}
		if got := st.MaxRowNonzeros(); got != kind.Degree() {
			t.Fatalf("%v: MaxRowNonzeros = %d", kind, got)
		}
		if st.NNZ() != csr.NNZ() {
			t.Fatalf("%v: NNZ %d vs CSR %d", kind, st.NNZ(), csr.NNZ())
		}
	}
}

func TestStencilInteriorRowDegree(t *testing.T) {
	// For a 2D 5-point stencil on a 4x4 grid, the interior rows have all
	// 5 entries; check one.
	st := NewStencil(Stencil2D5, 4)
	csr := st.ToCSR()
	idx := 1*4 + 1 // interior point
	count := 0
	for j := 0; j < csr.Dim(); j++ {
		if csr.At(idx, j) != 0 {
			count++
		}
	}
	if count != 5 {
		t.Fatalf("interior row has %d nonzeros, want 5", count)
	}
}

func TestPoissonGenerators(t *testing.T) {
	p1 := Poisson1D(10)
	if p1.Dim() != 10 || !p1.IsSymmetric(0) {
		t.Fatal("Poisson1D malformed")
	}
	p2 := Poisson2D(4)
	if p2.Dim() != 16 || !p2.IsSymmetric(0) {
		t.Fatal("Poisson2D malformed")
	}
	p3 := Poisson3D(3)
	if p3.Dim() != 27 || !p3.IsSymmetric(0) {
		t.Fatal("Poisson3D malformed")
	}
}

func TestTridiagToeplitz(t *testing.T) {
	a := TridiagToeplitz(5, 3, -1)
	if a.At(2, 2) != 3 || a.At(2, 3) != -1 || a.At(2, 1) != -1 || a.At(2, 4) != 0 {
		t.Fatal("TridiagToeplitz entries wrong")
	}
}

func TestGraphLaplacian(t *testing.T) {
	// Path graph 0-1-2 with unit weights, shift 0.5.
	edges := []Edge{{0, 1, 1}, {1, 2, 1}}
	l := GraphLaplacian(3, edges, 0.5)
	if l.At(0, 0) != 1.5 || l.At(1, 1) != 2.5 || l.At(0, 1) != -1 {
		t.Fatalf("Laplacian entries wrong: %v %v %v", l.At(0, 0), l.At(1, 1), l.At(0, 1))
	}
	if !l.IsSymmetric(0) {
		t.Fatal("Laplacian not symmetric")
	}
}

func TestGraphLaplacianPanics(t *testing.T) {
	for _, f := range []func(){
		func() { GraphLaplacian(2, []Edge{{0, 0, 1}}, 1) },
		func() { GraphLaplacian(2, []Edge{{0, 1, -1}}, 1) },
		func() { GraphLaplacian(2, nil, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestRingLaplacianSpectrumEndpoint(t *testing.T) {
	// Constant vector is the eigenvector with eigenvalue shift.
	n := 8
	shift := 0.25
	l := RingLaplacian(n, shift)
	x := vec.New(n)
	vec.Fill(x, 1)
	y := vec.New(n)
	l.MulVec(y, x)
	for i := range y {
		if math.Abs(y[i]-shift) > 1e-13 {
			t.Fatalf("ring Laplacian constant-vector eigenvalue: got %v want %v", y[i], shift)
		}
	}
}

func TestPrescribedSpectrum(t *testing.T) {
	a := PrescribedSpectrum(5, 100)
	if math.Abs(a.At(0, 0)-1) > 1e-13 {
		t.Fatalf("smallest eigenvalue = %v", a.At(0, 0))
	}
	if math.Abs(a.At(4, 4)-100) > 1e-10 {
		t.Fatalf("largest eigenvalue = %v", a.At(4, 4))
	}
	one := PrescribedSpectrum(1, 7)
	if one.At(0, 0) != 7 {
		t.Fatal("n=1 spectrum wrong")
	}
}

func TestDiagonalMatrix(t *testing.T) {
	a := DiagonalMatrix(vec.NewFrom([]float64{1, 2, 3}))
	x := vec.NewFrom([]float64{1, 1, 1})
	y := vec.New(3)
	a.MulVec(y, x)
	if y[0] != 1 || y[1] != 2 || y[2] != 3 {
		t.Fatalf("DiagonalMatrix MulVec got %v", y)
	}
}

func TestPowerApply(t *testing.T) {
	a := Poisson1D(6)
	x := vec.New(6)
	vec.Random(x, 1)
	ps := PowerApply(a, x, 3)
	if len(ps) != 4 {
		t.Fatalf("PowerApply returned %d vectors", len(ps)) //nolint
	}
	if !vec.Equal(ps[0], x) {
		t.Fatal("A^0 x != x")
	}
	// Verify A * ps[i] == ps[i+1]
	tmp := vec.New(6)
	for i := 0; i < 3; i++ {
		a.MulVec(tmp, ps[i])
		if !vec.EqualTol(tmp, ps[i+1], 1e-13) {
			t.Fatalf("power %d mismatch", i+1)
		}
	}
}

func TestRandomSPDDeterministic(t *testing.T) {
	a := RandomSPD(25, 4, 99)
	b := RandomSPD(25, 4, 99)
	x := vec.New(25)
	vec.Random(x, 1)
	ya := vec.New(25)
	yb := vec.New(25)
	a.MulVec(ya, x)
	b.MulVec(yb, x)
	if !vec.Equal(ya, yb) {
		t.Fatal("RandomSPD not deterministic")
	}
}

func TestRandomSPDPositiveDefiniteQuadraticForm(t *testing.T) {
	// Diagonal dominance + symmetry implies x'Ax > 0 for x != 0; sample it.
	a := RandomSPD(30, 5, 3)
	y := vec.New(30)
	for trial := 0; trial < 10; trial++ {
		x := vec.New(30)
		vec.Random(x, uint64(trial+1))
		a.MulVec(y, x)
		if q := vec.Dot(x, y); q <= 0 {
			t.Fatalf("quadratic form non-positive: %v", q)
		}
	}
}

// Property: stencil operators are symmetric, i.e. <Ax, y> == <x, Ay>.
func TestPropStencilSelfAdjoint(t *testing.T) {
	f := func(seed uint64, kindRaw uint8, mRaw uint8) bool {
		kinds := []StencilKind{Stencil1D3, Stencil2D5, Stencil2D9, Stencil3D7, Stencil3D27}
		kind := kinds[int(kindRaw)%len(kinds)]
		m := int(mRaw)%5 + 2
		st := NewStencil(kind, m)
		n := st.Dim()
		x := vec.New(n)
		y := vec.New(n)
		vec.Random(x, seed)
		vec.Random(y, seed^0xdeadbeef)
		ax := vec.New(n)
		ay := vec.New(n)
		st.MulVec(ax, x)
		st.MulVec(ay, y)
		lhs := vec.Dot(ax, y)
		rhs := vec.Dot(x, ay)
		return math.Abs(lhs-rhs) <= 1e-10*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: quadratic form of stencil Laplacians is nonnegative
// (positive semidefinite even before boundary effects; with Dirichlet
// boundaries strictly positive for nonzero x).
func TestPropStencilPositive(t *testing.T) {
	f := func(seed uint64, mRaw uint8) bool {
		m := int(mRaw)%6 + 2
		st := NewStencil(Stencil2D5, m)
		n := st.Dim()
		x := vec.New(n)
		vec.Random(x, seed)
		ax := vec.New(n)
		st.MulVec(ax, x)
		return vec.Dot(x, ax) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: COO assembly order does not change the CSR result.
func TestPropCOOOrderInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		n := 12
		// Build the same entries in two different orders.
		entries := [][3]int{}
		s := seed
		next := func() uint64 {
			s += 0x9e3779b97f4a7c15
			z := s
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			return z ^ (z >> 31)
		}
		for k := 0; k < 30; k++ {
			i := int(next() % uint64(n))
			j := int(next() % uint64(n))
			v := int(next()%7) + 1
			entries = append(entries, [3]int{i, j, v})
		}
		fwd := NewCOO(n)
		rev := NewCOO(n)
		for _, e := range entries {
			fwd.Add(e[0], e[1], float64(e[2]))
		}
		for k := len(entries) - 1; k >= 0; k-- {
			e := entries[k]
			rev.Add(e[0], e[1], float64(e[2]))
		}
		a := fwd.ToCSR()
		b := rev.ToCSR()
		x := vec.New(n)
		vec.Random(x, seed)
		ya := vec.New(n)
		yb := vec.New(n)
		a.MulVec(ya, x)
		b.MulVec(yb, x)
		return vec.EqualTol(ya, yb, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
