package sparse

import (
	"fmt"
	"sort"
	"sync/atomic"

	"vrcg/internal/vec"
)

// COO is a coordinate-format builder for sparse matrices. Entries may be
// added in any order; duplicate (i,j) entries are summed when converting
// to CSR, matching the usual finite-element assembly convention.
type COO struct {
	n    int
	rows []int
	cols []int
	vals []float64
}

// NewCOO returns an empty n x n coordinate builder.
func NewCOO(n int) *COO {
	if n <= 0 {
		panic("sparse: NewCOO requires n > 0")
	}
	return &COO{n: n}
}

// Dim returns the order of the matrix being assembled.
func (c *COO) Dim() int { return c.n }

// Add accumulates v into entry (i, j).
func (c *COO) Add(i, j int, v float64) {
	if i < 0 || i >= c.n || j < 0 || j >= c.n {
		panic(fmt.Sprintf("sparse: COO.Add index (%d,%d) out of range for n=%d", i, j, c.n))
	}
	c.rows = append(c.rows, i)
	c.cols = append(c.cols, j)
	c.vals = append(c.vals, v)
}

// AddSym accumulates v into (i, j) and, when i != j, into (j, i).
func (c *COO) AddSym(i, j int, v float64) {
	c.Add(i, j, v)
	if i != j {
		c.Add(j, i, v)
	}
}

// Len returns the number of accumulated (possibly duplicate) entries.
func (c *COO) Len() int { return len(c.vals) }

// ToCSR converts the accumulated entries into compressed sparse row form,
// summing duplicates and dropping entries that cancel to exactly zero.
//
// The build is sort-based rather than map-based: a counting sort buckets
// entries by row in O(nnz), each row is sorted by column, and duplicates
// are merged in a single in-place compaction pass. For the large regular
// stencils this repository assembles, that replaces O(nnz) hash-map
// inserts (the old dominant cost) with two linear passes plus short
// per-row sorts.
func (c *COO) ToCSR() *CSR {
	n := c.n
	nnz := len(c.vals)

	// Pass 1: counting sort by row.
	ptr := make([]int, n+1)
	for _, i := range c.rows {
		ptr[i+1]++
	}
	for i := 0; i < n; i++ {
		ptr[i+1] += ptr[i]
	}
	cols := make([]int, nnz)
	vals := make([]float64, nnz)
	cursor := make([]int, n)
	copy(cursor, ptr[:n])
	for k, i := range c.rows {
		p := cursor[i]
		cursor[i]++
		cols[p] = c.cols[k]
		vals[p] = c.vals[k]
	}

	// Pass 2: per-row column sort, then in-place merge of duplicate
	// columns (summed) and exact zeros (dropped). The write cursor never
	// overtakes the read cursor, so compaction reuses the same arrays.
	rowPtr := make([]int, n+1)
	out := 0
	for i := 0; i < n; i++ {
		lo, hi := ptr[i], ptr[i+1]
		sort.Sort(rowView{cols: cols[lo:hi], vals: vals[lo:hi]})
		p := lo
		for p < hi {
			j := cols[p]
			s := vals[p]
			p++
			for p < hi && cols[p] == j {
				s += vals[p]
				p++
			}
			if s != 0 {
				cols[out] = j
				vals[out] = s
				out++
			}
		}
		rowPtr[i+1] = out
	}
	csr := &CSR{n: n, rowPtr: rowPtr, colIdx: cols[:out], vals: vals[:out]}
	csr.warmPartition()
	return csr
}

// CSR is a compressed sparse row matrix: for row i, the structural
// nonzeros live at positions rowPtr[i]..rowPtr[i+1] of colIdx/vals,
// with column indices sorted ascending within each row.
type CSR struct {
	n      int
	rowPtr []int
	colIdx []int
	vals   []float64

	// part caches the most recent nnz-balanced row partition (see
	// RowPartition). It is an atomic pointer so concurrent MulVecPool
	// callers can share one matrix safely.
	part atomic.Pointer[rowPartition]

	// tuned caches the TuneMulVec decision for this matrix (a SELL
	// conversion, or "keep CSR"), so format auto-selection runs once
	// per matrix rather than once per solve.
	tuned atomic.Pointer[tunedOp]

	// tr caches the explicit transpose for MulVecT/MulVecTPool.
	// Invalidated (with tuned) by the value-mutating methods.
	tr atomic.Pointer[CSR]
}

// rowPartition is a cached chunking of rows into parts of near-equal
// nonzero count: chunk c covers rows bounds[c]..bounds[c+1].
type rowPartition struct {
	parts  int
	bounds []int
}

// NewCSR builds a CSR matrix directly from its raw arrays. The arrays are
// used without copying; rowPtr must have length n+1 and colIdx/vals must
// have length rowPtr[n]. Rows are sorted during construction.
func NewCSR(n int, rowPtr, colIdx []int, vals []float64) *CSR {
	if len(rowPtr) != n+1 {
		panic(fmt.Sprintf("sparse: rowPtr length %d, want %d", len(rowPtr), n+1))
	}
	if len(colIdx) != rowPtr[n] || len(vals) != rowPtr[n] {
		panic("sparse: colIdx/vals length disagrees with rowPtr")
	}
	m := &CSR{n: n, rowPtr: rowPtr, colIdx: colIdx, vals: vals}
	m.sortRows()
	m.warmPartition()
	return m
}

func (m *CSR) sortRows() {
	for i := 0; i < m.n; i++ {
		lo, hi := m.rowPtr[i], m.rowPtr[i+1]
		row := rowView{cols: m.colIdx[lo:hi], vals: m.vals[lo:hi]}
		sort.Sort(row)
	}
}

type rowView struct {
	cols []int
	vals []float64
}

func (r rowView) Len() int           { return len(r.cols) }
func (r rowView) Less(i, j int) bool { return r.cols[i] < r.cols[j] }
func (r rowView) Swap(i, j int) {
	r.cols[i], r.cols[j] = r.cols[j], r.cols[i]
	r.vals[i], r.vals[j] = r.vals[j], r.vals[i]
}

// Dim returns the order of the matrix.
func (m *CSR) Dim() int { return m.n }

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.vals) }

// MaxRowNonzeros returns the maximum number of stored entries in any row
// (the paper's sparsity parameter d).
func (m *CSR) MaxRowNonzeros() int {
	maxNZ := 0
	for i := 0; i < m.n; i++ {
		if nz := m.rowPtr[i+1] - m.rowPtr[i]; nz > maxNZ {
			maxNZ = nz
		}
	}
	return maxNZ
}

// At returns A[i,j] (zero if the entry is not stored).
func (m *CSR) At(i, j int) float64 {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	cols := m.colIdx[lo:hi]
	k := sort.SearchInts(cols, j)
	if k < len(cols) && cols[k] == j {
		return m.vals[lo+k]
	}
	return 0
}

// ScanRow calls emit for every stored entry (column, value) of row i in
// ascending column order.
func (m *CSR) ScanRow(i int, emit func(j int, v float64)) {
	for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
		emit(m.colIdx[p], m.vals[p])
	}
}

// Diag extracts the diagonal into dst (length n). Missing diagonal
// entries are zero.
func (m *CSR) Diag(dst []float64) {
	if len(dst) != m.n {
		panic("sparse: Diag dimension mismatch")
	}
	for i := 0; i < m.n; i++ {
		dst[i] = m.At(i, i)
	}
}

// MulVec computes dst = A*x.
func (m *CSR) MulVec(dst, x []float64) {
	checkMul(m, dst, x)
	for i := 0; i < m.n; i++ {
		var s float64
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			s += m.vals[p] * x[m.colIdx[p]]
		}
		dst[i] = s
	}
}

// warmPartition precomputes the nnz-balanced row partition for the
// shared default pool at construction time, so the first hot-path
// MulVecPool call does no partitioning work.
func (m *CSR) warmPartition() {
	if w := vec.DefaultPool.Workers(); w > 1 {
		m.RowPartition(w)
	}
}

// RowPartition returns chunk boundaries that split the rows into at most
// parts contiguous ranges of near-equal *nonzero* count (equal work, not
// equal row count — the partition an irregular sparsity pattern needs
// for balanced parallel SpMV). The result has between 2 and parts+1
// offsets, starts at 0, ends at Dim, and is strictly increasing. The
// most recent partition is cached on the matrix.
func (m *CSR) RowPartition(parts int) []int {
	if parts < 1 {
		parts = 1
	}
	if parts > m.n {
		parts = m.n
	}
	if cached := m.part.Load(); cached != nil && cached.parts == parts {
		return cached.bounds
	}
	bounds := nnzBalancedBounds(m.rowPtr, parts)
	m.part.Store(&rowPartition{parts: parts, bounds: bounds})
	return bounds
}

// nnzBalancedBounds cuts rows so chunk c ends at the first row whose
// cumulative nonzero count reaches c/parts of the total. rowPtr is
// exactly that cumulative count, so each cut is one binary search.
func nnzBalancedBounds(rowPtr []int, parts int) []int {
	n := len(rowPtr) - 1
	nnz := rowPtr[n]
	bounds := make([]int, 1, parts+1)
	for c := 1; c < parts; c++ {
		target := int(int64(c) * int64(nnz) / int64(parts))
		r := sort.SearchInts(rowPtr, target)
		if r > n {
			r = n
		}
		if last := bounds[len(bounds)-1]; r <= last {
			r = last + 1
		}
		if r >= n {
			break
		}
		bounds = append(bounds, r)
	}
	return append(bounds, n)
}

// MulVecPool computes dst = A*x in parallel over the pool using the
// cached nnz-balanced row partition. Small matrices (nonzeros below the
// pool's SpMV cutoff), a nil pool, or a serial pool all fall back to
// the serial MulVec. The result is bitwise identical to MulVec:
// parallelism is across rows, and each row's accumulation order is
// unchanged.
func (m *CSR) MulVecPool(pool *Pool, dst, x []float64) {
	checkMul(m, dst, x)
	if pool == nil || pool.Workers() < 2 || len(m.vals) < pool.SpMVCutoff() {
		m.MulVec(dst, x)
		return
	}
	bounds := m.RowPartition(pool.Workers())
	if !pool.CSRMulVec(bounds, m.rowPtr, m.colIdx, m.vals, dst, x) {
		m.MulVec(dst, x)
	}
}

// MulVecs computes dsts[j] = A*xs[j] for every column in one pass over
// the row data, reading each row's (value, column) stream once per
// group of four columns instead of once per column. Each output column
// is bitwise identical to MulVec on the same input. dsts and xs must
// have equal length, with every vector of length Dim; no dst may alias
// any x.
func (m *CSR) MulVecs(dsts, xs [][]float64) {
	checkMulVecs(m, dsts, xs)
	vec.CSRMulVecsRows(m.rowPtr, m.colIdx, m.vals, dsts, xs, 0, m.n)
}

// MulVecsPool computes dsts[j] = A*xs[j] in parallel over the pool
// using the cached nnz-balanced row partition, with the same serial
// fallbacks and the same bitwise-identity guarantee as MulVecPool.
func (m *CSR) MulVecsPool(pool *Pool, dsts, xs [][]float64) {
	checkMulVecs(m, dsts, xs)
	if pool == nil || pool.Workers() < 2 || len(m.vals) < pool.SpMVCutoff() {
		vec.CSRMulVecsRows(m.rowPtr, m.colIdx, m.vals, dsts, xs, 0, m.n)
		return
	}
	bounds := m.RowPartition(pool.Workers())
	if !pool.CSRMulVecs(bounds, m.rowPtr, m.colIdx, m.vals, dsts, xs) {
		vec.CSRMulVecsRows(m.rowPtr, m.colIdx, m.vals, dsts, xs, 0, m.n)
	}
}

// transpose returns the cached explicit transpose, building it on first
// use.
func (m *CSR) transpose() *CSR {
	if t := m.tr.Load(); t != nil {
		return t
	}
	tPtr, tIdx, tVals := transposeArrays(m.n, m.n, m.rowPtr, m.colIdx, m.vals)
	t := &CSR{n: m.n, rowPtr: tPtr, colIdx: tIdx, vals: tVals}
	t.warmPartition()
	m.tr.Store(t)
	return t
}

// MulVecT computes dst = Aᵀ*x from a cached explicit transpose.
func (m *CSR) MulVecT(dst, x []float64) {
	m.transpose().MulVec(dst, x)
}

// MulVecTPool computes dst = Aᵀ*x over the pool — a race-free row-wise
// gather on the cached explicit transpose, bitwise identical to MulVecT.
func (m *CSR) MulVecTPool(pool *Pool, dst, x []float64) {
	m.transpose().MulVecPool(pool, dst, x)
}

// Values returns the stored nonzero values in row-major CSR order. The
// slice is the matrix's backing storage: treat it as read-only and use
// SetValues or Scale to mutate.
func (m *CSR) Values() []float64 { return m.vals }

// SetValues replaces the stored values in place (structure unchanged);
// vals must have length NNZ. Cached derived state (the tuned operator
// and the explicit transpose, both of which copy values) is invalidated.
func (m *CSR) SetValues(vals []float64) {
	if len(vals) != len(m.vals) {
		panic(fmt.Sprintf("sparse: SetValues length %d, want %d", len(vals), len(m.vals)))
	}
	copy(m.vals, vals)
	m.invalidate()
}

// Scale multiplies every stored value by s in place, invalidating the
// cached tuned operator and transpose.
func (m *CSR) Scale(s float64) {
	for i := range m.vals {
		m.vals[i] *= s
	}
	m.invalidate()
}

func (m *CSR) invalidate() {
	m.tuned.Store(nil)
	m.tr.Store(nil)
}

// CloneValues returns a matrix sharing this one's immutable structure
// (rowPtr/colIdx and the cached row partition) but owning a private copy
// of the values, so the clone can be mutated (SetValues, Scale) without
// affecting the original — the isolation a solve sequence needs over a
// shared stored operator.
func (m *CSR) CloneValues() *CSR {
	vals := make([]float64, len(m.vals))
	copy(vals, m.vals)
	c := &CSR{n: m.n, rowPtr: m.rowPtr, colIdx: m.colIdx, vals: vals}
	if p := m.part.Load(); p != nil {
		c.part.Store(p)
	}
	return c
}

// IsSymmetric reports whether every stored entry (i,j) has a matching
// (j,i) entry equal within tol.
func (m *CSR) IsSymmetric(tol float64) bool {
	for i := 0; i < m.n; i++ {
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			j := m.colIdx[p]
			if diff := m.vals[p] - m.At(j, i); diff > tol || diff < -tol {
				return false
			}
		}
	}
	return true
}

// IsDiagonallyDominant reports whether |a_ii| >= sum_{j!=i} |a_ij| for
// every row, a convenient sufficient condition when generating random
// SPD test matrices.
func (m *CSR) IsDiagonallyDominant() bool {
	for i := 0; i < m.n; i++ {
		var off, diag float64
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			v := m.vals[p]
			if v < 0 {
				v = -v
			}
			if m.colIdx[p] == i {
				diag = v
			} else {
				off += v
			}
		}
		if diag < off {
			return false
		}
	}
	return true
}

// ToDense expands the matrix to dense form (intended for small n in tests).
func (m *CSR) ToDense() *Dense {
	d := NewDense(m.n)
	for i := 0; i < m.n; i++ {
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			d.Set(i, m.colIdx[p], m.vals[p])
		}
	}
	return d
}

var (
	_ Matrix     = (*CSR)(nil)
	_ Sparse     = (*CSR)(nil)
	_ PoolMulVec = (*CSR)(nil)
)
