package sparse

import (
	"fmt"

	"vrcg/internal/vec"
)

// Stencil kinds supported by the matrix-free grid operators. The paper's
// complexity bound max(log d, log log N) is parameterized by d, the row
// degree; these stencils realize d = 3, 5, 7, 9 and 27 on regular grids
// with homogeneous Dirichlet boundaries. All are symmetric positive
// definite discrete Laplacians (scaled so the diagonal is positive).
type StencilKind int

const (
	// Stencil1D3 is the 1D three-point Laplacian [-1 2 -1].
	Stencil1D3 StencilKind = iota
	// Stencil2D5 is the 2D five-point Laplacian.
	Stencil2D5
	// Stencil2D9 is the 2D nine-point (Moore neighborhood) Laplacian.
	Stencil2D9
	// Stencil3D7 is the 3D seven-point Laplacian.
	Stencil3D7
	// Stencil3D27 is the 3D twenty-seven-point Laplacian.
	Stencil3D27
)

// String names the stencil kind.
func (k StencilKind) String() string {
	switch k {
	case Stencil1D3:
		return "1D-3pt"
	case Stencil2D5:
		return "2D-5pt"
	case Stencil2D9:
		return "2D-9pt"
	case Stencil3D7:
		return "3D-7pt"
	case Stencil3D27:
		return "3D-27pt"
	default:
		return fmt.Sprintf("StencilKind(%d)", int(k))
	}
}

// Degree returns d, the maximum nonzeros per row for the stencil.
func (k StencilKind) Degree() int {
	switch k {
	case Stencil1D3:
		return 3
	case Stencil2D5:
		return 5
	case Stencil2D9:
		return 9
	case Stencil3D7:
		return 7
	case Stencil3D27:
		return 27
	default:
		panic("sparse: unknown stencil kind")
	}
}

// Dims returns the spatial dimensionality of the stencil's grid.
func (k StencilKind) Dims() int {
	switch k {
	case Stencil1D3:
		return 1
	case Stencil2D5, Stencil2D9:
		return 2
	case Stencil3D7, Stencil3D27:
		return 3
	default:
		panic("sparse: unknown stencil kind")
	}
}

// Stencil is a matrix-free discrete Laplacian on a regular grid of side
// m per dimension with homogeneous Dirichlet boundary conditions. Its
// order is m^dims.
type Stencil struct {
	kind StencilKind
	m    int // grid points per dimension
	n    int // total unknowns = m^dims

	// rangeFn caches the row-range kernel as a method value so pooled
	// dispatch (MulVecPool) allocates nothing per call.
	rangeFn vec.RowKernel
}

// NewStencil returns the stencil operator on an m-per-side grid.
func NewStencil(kind StencilKind, m int) *Stencil {
	if m <= 0 {
		panic("sparse: NewStencil requires m > 0")
	}
	n := m
	for i := 1; i < kind.Dims(); i++ {
		n *= m
	}
	s := &Stencil{kind: kind, m: m, n: n}
	s.rangeFn = s.mulRange
	return s
}

// Kind returns the stencil kind.
func (s *Stencil) Kind() StencilKind { return s.kind }

// GridSide returns points per dimension.
func (s *Stencil) GridSide() int { return s.m }

// Dim returns the operator order m^dims.
func (s *Stencil) Dim() int { return s.n }

// MaxRowNonzeros returns the stencil degree d.
func (s *Stencil) MaxRowNonzeros() int { return s.kind.Degree() }

// NNZ returns an exact count of structural nonzeros (interior rows have
// full degree; boundary rows fewer).
func (s *Stencil) NNZ() int {
	// Count via the same neighbor enumeration MulVec uses.
	count := 0
	s.forEachEntry(func(_, _ int, _ float64) { count++ })
	return count
}

// MulVec computes dst = A*x.
func (s *Stencil) MulVec(dst, x []float64) {
	checkMul(s, dst, x)
	s.mulRange(0, s.n, dst, x)
}

// MulVecPool computes dst = A*x in parallel over the pool by splitting
// the rows (grid points) into near-equal chunks; a stencil does uniform
// work per row, so an equal split balances. Small grids, a nil pool, or
// a serial pool fall back to the serial MulVec. The result is bitwise
// identical to MulVec.
func (s *Stencil) MulVecPool(pool *Pool, dst, x []float64) {
	checkMul(s, dst, x)
	if pool == nil || pool.Workers() < 2 || !pool.RowMulVec(s.n, dst, x, s.rangeFn) {
		s.MulVec(dst, x)
	}
}

// mulRange computes rows [lo, hi) of dst = A*x. Each row's accumulation
// order is independent of the split, so chunked parallel products are
// bitwise identical to the serial one.
func (s *Stencil) mulRange(lo, hi int, dst, x []float64) {
	switch s.kind {
	case Stencil1D3:
		s.mul1D(lo, hi, dst, x)
	case Stencil2D5:
		s.mul2D5(lo, hi, dst, x)
	case Stencil2D9:
		s.mul2D9(lo, hi, dst, x)
	case Stencil3D7:
		s.mul3D7(lo, hi, dst, x)
	case Stencil3D27:
		s.mul3D27(lo, hi, dst, x)
	}
}

func (s *Stencil) mul1D(lo, hi int, dst, x []float64) {
	m := s.m
	for i := lo; i < hi; i++ {
		v := 2 * x[i]
		if i > 0 {
			v -= x[i-1]
		}
		if i < m-1 {
			v -= x[i+1]
		}
		dst[i] = v
	}
}

// mul2D5 walks [lo, hi) scanline by scanline so the inner loop stays
// free of divisions.
func (s *Stencil) mul2D5(lo, hi int, dst, x []float64) {
	m := s.m
	for idx := lo; idx < hi; {
		j := idx / m
		i := idx - j*m
		end := (j + 1) * m
		if end > hi {
			end = hi
		}
		for ; idx < end; idx, i = idx+1, i+1 {
			v := 4 * x[idx]
			if i > 0 {
				v -= x[idx-1]
			}
			if i < m-1 {
				v -= x[idx+1]
			}
			if j > 0 {
				v -= x[idx-m]
			}
			if j < m-1 {
				v -= x[idx+m]
			}
			dst[idx] = v
		}
	}
}

func (s *Stencil) mul2D9(lo, hi int, dst, x []float64) {
	// 9-point compact Laplacian: center 8/3, edge neighbors -1/3,
	// corner neighbors -1/3 (scaled variant that stays SPD).
	m := s.m
	const center, edge, corner = 8.0 / 3.0, -1.0 / 3.0, -1.0 / 3.0
	for idx := lo; idx < hi; {
		j := idx / m
		i := idx - j*m
		end := (j + 1) * m
		if end > hi {
			end = hi
		}
		for ; idx < end; idx, i = idx+1, i+1 {
			v := center * x[idx]
			for dj := -1; dj <= 1; dj++ {
				for di := -1; di <= 1; di++ {
					if di == 0 && dj == 0 {
						continue
					}
					ii, jj := i+di, j+dj
					if ii < 0 || ii >= m || jj < 0 || jj >= m {
						continue
					}
					w := edge
					if di != 0 && dj != 0 {
						w = corner
					}
					v += w * x[jj*m+ii]
				}
			}
			dst[idx] = v
		}
	}
}

func (s *Stencil) mul3D7(lo, hi int, dst, x []float64) {
	m := s.m
	mm := m * m
	for idx := lo; idx < hi; {
		k := idx / mm
		rem := idx - k*mm
		j := rem / m
		i := rem - j*m
		end := k*mm + (j+1)*m
		if end > hi {
			end = hi
		}
		for ; idx < end; idx, i = idx+1, i+1 {
			v := 6 * x[idx]
			if i > 0 {
				v -= x[idx-1]
			}
			if i < m-1 {
				v -= x[idx+1]
			}
			if j > 0 {
				v -= x[idx-m]
			}
			if j < m-1 {
				v -= x[idx+m]
			}
			if k > 0 {
				v -= x[idx-mm]
			}
			if k < m-1 {
				v -= x[idx+mm]
			}
			dst[idx] = v
		}
	}
}

func (s *Stencil) mul3D27(lo, hi int, dst, x []float64) {
	// 27-point Laplacian with center 2, neighbors -2/26, keeping strict
	// diagonal dominance and SPD.
	m := s.m
	mm := m * m
	const center = 2.0
	const w = -2.0 / 26.0
	for idx := lo; idx < hi; {
		k := idx / mm
		rem := idx - k*mm
		j := rem / m
		i := rem - j*m
		end := k*mm + (j+1)*m
		if end > hi {
			end = hi
		}
		for ; idx < end; idx, i = idx+1, i+1 {
			v := center * x[idx]
			for dk := -1; dk <= 1; dk++ {
				for dj := -1; dj <= 1; dj++ {
					for di := -1; di <= 1; di++ {
						if di == 0 && dj == 0 && dk == 0 {
							continue
						}
						ii, jj, kk := i+di, j+dj, k+dk
						if ii < 0 || ii >= m || jj < 0 || jj >= m || kk < 0 || kk >= m {
							continue
						}
						v += w * x[kk*mm+jj*m+ii]
					}
				}
			}
			dst[idx] = v
		}
	}
}

// forEachEntry enumerates structural nonzeros (i, j, value).
func (s *Stencil) forEachEntry(emit func(i, j int, v float64)) {
	n := s.n
	// Reuse MulVec against unit vectors only for small n; otherwise
	// enumerate analytically. For simplicity and correctness we enumerate
	// analytically for each kind.
	switch s.kind {
	case Stencil1D3:
		for i := 0; i < n; i++ {
			emit(i, i, 2)
			if i > 0 {
				emit(i, i-1, -1)
			}
			if i < n-1 {
				emit(i, i+1, -1)
			}
		}
	case Stencil2D5:
		m := s.m
		for j := 0; j < m; j++ {
			for i := 0; i < m; i++ {
				idx := j*m + i
				emit(idx, idx, 4)
				if i > 0 {
					emit(idx, idx-1, -1)
				}
				if i < m-1 {
					emit(idx, idx+1, -1)
				}
				if j > 0 {
					emit(idx, idx-m, -1)
				}
				if j < m-1 {
					emit(idx, idx+m, -1)
				}
			}
		}
	case Stencil2D9:
		m := s.m
		for j := 0; j < m; j++ {
			for i := 0; i < m; i++ {
				idx := j*m + i
				emit(idx, idx, 8.0/3.0)
				for dj := -1; dj <= 1; dj++ {
					for di := -1; di <= 1; di++ {
						if di == 0 && dj == 0 {
							continue
						}
						ii, jj := i+di, j+dj
						if ii < 0 || ii >= m || jj < 0 || jj >= m {
							continue
						}
						emit(idx, jj*m+ii, -1.0/3.0)
					}
				}
			}
		}
	case Stencil3D7:
		m := s.m
		mm := m * m
		for k := 0; k < m; k++ {
			for j := 0; j < m; j++ {
				for i := 0; i < m; i++ {
					idx := k*mm + j*m + i
					emit(idx, idx, 6)
					if i > 0 {
						emit(idx, idx-1, -1)
					}
					if i < m-1 {
						emit(idx, idx+1, -1)
					}
					if j > 0 {
						emit(idx, idx-m, -1)
					}
					if j < m-1 {
						emit(idx, idx+m, -1)
					}
					if k > 0 {
						emit(idx, idx-mm, -1)
					}
					if k < m-1 {
						emit(idx, idx+mm, -1)
					}
				}
			}
		}
	case Stencil3D27:
		m := s.m
		mm := m * m
		for k := 0; k < m; k++ {
			for j := 0; j < m; j++ {
				for i := 0; i < m; i++ {
					idx := k*mm + j*m + i
					emit(idx, idx, 2.0)
					for dk := -1; dk <= 1; dk++ {
						for dj := -1; dj <= 1; dj++ {
							for di := -1; di <= 1; di++ {
								if di == 0 && dj == 0 && dk == 0 {
									continue
								}
								ii, jj, kk := i+di, j+dj, k+dk
								if ii < 0 || ii >= m || jj < 0 || jj >= m || kk < 0 || kk >= m {
									continue
								}
								emit(idx, kk*mm+jj*m+ii, -2.0/26.0)
							}
						}
					}
				}
			}
		}
	}
}

// ToCSR expands the stencil into explicit CSR form.
func (s *Stencil) ToCSR() *CSR {
	coo := NewCOO(s.n)
	s.forEachEntry(func(i, j int, v float64) { coo.Add(i, j, v) })
	return coo.ToCSR()
}

var (
	_ Matrix     = (*Stencil)(nil)
	_ Sparse     = (*Stencil)(nil)
	_ PoolMulVec = (*Stencil)(nil)
)
