// Package sparse is the public data plane of this repository: the
// sparse (and small dense) symmetric positive definite matrices that
// conjugate gradient iteration consumes, typed on plain []float64
// vectors so external callers can build, load, and implement operators
// without importing anything internal.
//
// It provides:
//
//   - Formats: CSR (with an nnz-balanced parallel MulVecPool), the
//     cache-blocked SELL-C-σ format (SELL, bitwise-compatible with CSR
//     and picked automatically by TuneMulVec when profitable), a COO
//     assembly builder, DIA diagonal storage, matrix-free Stencil
//     operators (1D/2D/3D Laplacians), and Dense for small reference
//     problems.
//   - I/O: ReadMatrixMarket / WriteMatrixMarket for coordinate-format
//     .mtx files, plus the array-format vector variants, and the JSON
//     wire codec (WireMatrix, EncodeCSR) network layers use to carry
//     matrices with full validation on decode.
//   - Generators: Poisson1D/2D/3D, variable-coefficient and anisotropic
//     Poisson, Toeplitz, graph Laplacians, random SPD matrices, and
//     prescribed-spectrum test problems.
//   - Reordering and spectra: RCM bandwidth reduction, symmetric
//     permutations, Gershgorin/power-method/Lanczos spectral estimates,
//     and symmetric diagonal scaling.
//
// Every matrix type satisfies solve.Operator, so anything built here
// plugs directly into the solve package:
//
//	a, err := sparse.ReadMatrixMarket(f)
//	sess, err := solve.NewSession("cg", a, solve.WithTol(1e-10))
//	res, err := sess.Solve(b)
//
// The package was promoted from internal/mat; the deprecated forwarding
// shim that briefly remained there has been removed (see
// internal/core/README.md for the migration table, and ARCHITECTURE.md
// for where this data plane sits in the system).
package sparse

import (
	"errors"
	"fmt"
)

// Matrix is a square linear operator. All CG variants in this repository
// need only matrix-vector products, so operators may be matrix-free.
type Matrix interface {
	// Dim returns the order n of the (n x n) operator.
	Dim() int
	// MulVec computes dst = A*x. dst and x must have length Dim and must
	// not alias each other.
	MulVec(dst, x []float64)
}

// Sparse is a Matrix with explicit sparsity information, used by the
// complexity model: the paper's parallel-time bound depends on d, the
// maximum number of nonzeros in any row.
type Sparse interface {
	Matrix
	// MaxRowNonzeros returns d, the maximum number of structural
	// nonzeros in any row.
	MaxRowNonzeros() int
	// NNZ returns the total number of structural nonzeros.
	NNZ() int
}

// PoolMulVec is a Matrix that also offers a worker-pool-parallel
// matrix–vector product. CSR implements it with an nnz-balanced row
// partition, and DIA and Stencil with equal row splits; solvers route
// their hot-path products through PooledMulVec so any operator that can
// parallelize, does.
type PoolMulVec interface {
	Matrix
	// MulVecPool computes dst = A*x over the pool, falling back to the
	// serial product when parallelism is not profitable.
	MulVecPool(pool *Pool, dst, x []float64)
}

// PooledMulVec computes dst = a*x through the pool when the operator
// supports it (and pool is non-nil), and serially otherwise. It is the
// single dispatch point the solver hot paths use.
func PooledMulVec(a Matrix, pool *Pool, dst, x []float64) {
	if pool != nil {
		if pm, ok := a.(PoolMulVec); ok {
			pm.MulVecPool(pool, dst, x)
			return
		}
	}
	a.MulVec(dst, x)
}

// MultiMulVec is a Matrix that can apply itself to several vectors in
// one pass over its data — the multi-RHS product the block solvers
// amortize their SpMV bandwidth with. CSR implements it with a
// column-grouped row sweep.
type MultiMulVec interface {
	Matrix
	// MulVecsPool computes dsts[j] = A*xs[j] for every column over the
	// pool, falling back to a serial multi-vector sweep when parallelism
	// is not profitable. Each output column must be bitwise identical to
	// the single-vector MulVec.
	MulVecsPool(pool *Pool, dsts, xs [][]float64)
}

// PooledMulVecs computes dsts[j] = a*xs[j] for every column, using the
// operator's one-pass multi-vector product when it offers one and
// falling back to per-column PooledMulVec otherwise. It is the block
// solvers' single dispatch point, mirroring PooledMulVec.
func PooledMulVecs(a Matrix, pool *Pool, dsts, xs [][]float64) {
	if len(dsts) != len(xs) {
		panic(fmt.Sprintf("sparse: MulVecs column count mismatch: %d dsts, %d xs", len(dsts), len(xs)))
	}
	if mm, ok := a.(MultiMulVec); ok {
		mm.MulVecsPool(pool, dsts, xs)
		return
	}
	for j := range xs {
		PooledMulVec(a, pool, dsts[j], xs[j])
	}
}

// ErrDim reports a dimension mismatch between an operator and a vector.
var ErrDim = errors.New("sparse: dimension mismatch")

func checkMul(a Matrix, dst, x []float64) {
	if len(dst) != a.Dim() || len(x) != a.Dim() {
		panic(fmt.Sprintf("sparse: MulVec dimension mismatch: A is %d, dst %d, x %d",
			a.Dim(), len(dst), len(x)))
	}
}

func checkMulVecs(a Matrix, dsts, xs [][]float64) {
	if len(dsts) != len(xs) {
		panic(fmt.Sprintf("sparse: MulVecs column count mismatch: %d dsts, %d xs", len(dsts), len(xs)))
	}
	for j := range xs {
		checkMul(a, dsts[j], xs[j])
	}
}

// Dense is a dense square matrix stored row-major. It exists for small
// reference problems and for validating sparse kernels against a direct
// implementation; production problems use CSR/DIA/stencil operators.
type Dense struct {
	n    int
	data []float64 // row-major n*n
}

// NewDense returns a zero dense n x n matrix.
func NewDense(n int) *Dense {
	if n <= 0 {
		panic("sparse: NewDense requires n > 0")
	}
	return &Dense{n: n, data: make([]float64, n*n)}
}

// NewDenseFrom builds a dense matrix from rows; all rows must have length n.
func NewDenseFrom(rows [][]float64) *Dense {
	n := len(rows)
	d := NewDense(n)
	for i, row := range rows {
		if len(row) != n {
			panic(fmt.Sprintf("sparse: row %d has %d entries, want %d", i, len(row), n))
		}
		copy(d.data[i*n:(i+1)*n], row)
	}
	return d
}

// Dim returns the order of the matrix.
func (d *Dense) Dim() int { return d.n }

// At returns A[i,j].
func (d *Dense) At(i, j int) float64 { return d.data[i*d.n+j] }

// Set assigns A[i,j] = v.
func (d *Dense) Set(i, j int, v float64) { d.data[i*d.n+j] = v }

// MulVec computes dst = A*x.
func (d *Dense) MulVec(dst, x []float64) {
	checkMul(d, dst, x)
	n := d.n
	for i := 0; i < n; i++ {
		row := d.data[i*n : (i+1)*n]
		var s float64
		for j, a := range row {
			s += a * x[j]
		}
		dst[i] = s
	}
}

// MulVecT computes dst = Aᵀ*x.
func (d *Dense) MulVecT(dst, x []float64) {
	checkMul(d, dst, x)
	n := d.n
	for j := 0; j < n; j++ {
		dst[j] = 0
	}
	for i := 0; i < n; i++ {
		row := d.data[i*n : (i+1)*n]
		xi := x[i]
		for j, a := range row {
			dst[j] += a * xi
		}
	}
}

// MaxRowNonzeros counts the densest row's structural nonzeros.
func (d *Dense) MaxRowNonzeros() int {
	maxNZ := 0
	for i := 0; i < d.n; i++ {
		nz := 0
		for j := 0; j < d.n; j++ {
			if d.At(i, j) != 0 {
				nz++
			}
		}
		if nz > maxNZ {
			maxNZ = nz
		}
	}
	return maxNZ
}

// NNZ counts all structural nonzeros.
func (d *Dense) NNZ() int {
	nnz := 0
	for _, v := range d.data {
		if v != 0 {
			nnz++
		}
	}
	return nnz
}

// IsSymmetric reports whether A equals its transpose within tol.
func (d *Dense) IsSymmetric(tol float64) bool {
	for i := 0; i < d.n; i++ {
		for j := i + 1; j < d.n; j++ {
			if diff := d.At(i, j) - d.At(j, i); diff > tol || diff < -tol {
				return false
			}
		}
	}
	return true
}

var (
	_ Matrix = (*Dense)(nil)
	_ Sparse = (*Dense)(nil)
)
