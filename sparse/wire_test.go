package sparse_test

import (
	"encoding/json"
	"errors"
	"testing"

	"vrcg/sparse"
)

// matEqual compares two matrices entrywise.
func matEqual(t *testing.T, a, b *sparse.CSR) {
	t.Helper()
	if a.Dim() != b.Dim() {
		t.Fatalf("dims %d vs %d", a.Dim(), b.Dim())
	}
	for i := 0; i < a.Dim(); i++ {
		for j := 0; j < a.Dim(); j++ {
			if a.At(i, j) != b.At(i, j) {
				t.Fatalf("entry (%d,%d): %g vs %g", i, j, a.At(i, j), b.At(i, j))
			}
		}
	}
}

func TestWireCSRRoundTrip(t *testing.T) {
	a := sparse.Poisson2D(5)
	blob, err := json.Marshal(sparse.EncodeCSR(a))
	if err != nil {
		t.Fatal(err)
	}
	var w sparse.WireMatrix
	if err := json.Unmarshal(blob, &w); err != nil {
		t.Fatal(err)
	}
	got, err := w.Decode()
	if err != nil {
		t.Fatal(err)
	}
	matEqual(t, a, got)
}

func TestWireCOODecode(t *testing.T) {
	// 2x2 SPD with a duplicate entry that must be summed.
	w := sparse.WireMatrix{
		Format: sparse.WireCOO,
		N:      2,
		Rows:   []int{0, 0, 1, 1, 0},
		Cols:   []int{0, 1, 0, 1, 0},
		Vals:   []float64{1.5, -1, -1, 2, 0.5},
	}
	got, err := w.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if got.At(0, 0) != 2 || got.At(0, 1) != -1 || got.At(1, 1) != 2 {
		t.Fatalf("bad decode: %v %v %v", got.At(0, 0), got.At(0, 1), got.At(1, 1))
	}
}

func TestWireMatrixMarketDecode(t *testing.T) {
	src := "%%MatrixMarket matrix coordinate real symmetric\n2 2 3\n1 1 2\n2 1 -1\n2 2 2\n"
	w := sparse.WireMatrix{Format: sparse.WireMatrixMarket, MatrixMarket: src}
	got, err := w.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim() != 2 || got.At(0, 1) != -1 {
		t.Fatalf("bad decode: n=%d a01=%v", got.Dim(), got.At(0, 1))
	}
}

func TestWireDecodeRejectsMalformed(t *testing.T) {
	cases := map[string]sparse.WireMatrix{
		"unknown format": {Format: "dense", N: 2},
		"csr bad n":      {Format: sparse.WireCSR, N: 0},
		"csr short row_ptr": {Format: sparse.WireCSR, N: 2,
			RowPtr: []int{0, 1}, ColIdx: []int{0}, Vals: []float64{1}},
		"csr non-monotone": {Format: sparse.WireCSR, N: 2,
			RowPtr: []int{0, 2, 1}, ColIdx: []int{0, 1}, Vals: []float64{1, 1}},
		"csr col out of range": {Format: sparse.WireCSR, N: 2,
			RowPtr: []int{0, 1, 2}, ColIdx: []int{0, 5}, Vals: []float64{1, 1}},
		"csr length mismatch": {Format: sparse.WireCSR, N: 2,
			RowPtr: []int{0, 1, 3}, ColIdx: []int{0, 1}, Vals: []float64{1, 1}},
		"csr duplicate column": {Format: sparse.WireCSR, N: 2,
			RowPtr: []int{0, 2, 3}, ColIdx: []int{0, 0, 1}, Vals: []float64{1, 1, 2}},
		"coo ragged": {Format: sparse.WireCOO, N: 2,
			Rows: []int{0}, Cols: []int{0, 1}, Vals: []float64{1}},
		"coo out of range": {Format: sparse.WireCOO, N: 2,
			Rows: []int{2}, Cols: []int{0}, Vals: []float64{1}},
		"mm garbage": {Format: sparse.WireMatrixMarket, MatrixMarket: "not a matrix"},
	}
	for name, w := range cases {
		if _, err := w.Decode(); !errors.Is(err, sparse.ErrWire) {
			t.Errorf("%s: want ErrWire, got %v", name, err)
		}
	}
}

// TestWireDecodeLimited: a tiny envelope declaring a huge order is
// rejected before any order-sized allocation, for every format.
func TestWireDecodeLimited(t *testing.T) {
	huge := []sparse.WireMatrix{
		{Format: sparse.WireCOO, N: 2_000_000_000},
		{Format: sparse.WireCSR, N: 2_000_000_000},
		{Format: sparse.WireMatrixMarket,
			MatrixMarket: "%%MatrixMarket matrix coordinate real general\n2000000000 2000000000 0\n"},
	}
	for i, w := range huge {
		if _, err := w.DecodeLimited(1 << 20); !errors.Is(err, sparse.ErrWire) {
			t.Errorf("case %d: want ErrWire for oversized order, got %v", i, err)
		}
	}
	// Within the limit everything still decodes.
	ok := sparse.WireMatrix{Format: sparse.WireCOO, N: 2,
		Rows: []int{0, 1}, Cols: []int{0, 1}, Vals: []float64{1, 1}}
	if _, err := ok.DecodeLimited(4); err != nil {
		t.Fatal(err)
	}
}

func TestWireDecodeCopiesArrays(t *testing.T) {
	w := sparse.WireMatrix{
		Format: sparse.WireCSR,
		N:      2,
		RowPtr: []int{0, 1, 2},
		ColIdx: []int{0, 1},
		Vals:   []float64{3, 4},
	}
	m, err := w.Decode()
	if err != nil {
		t.Fatal(err)
	}
	w.Vals[0] = 99 // caller reuses its buffer; the matrix must not see it
	if m.At(0, 0) != 3 {
		t.Fatalf("decoded matrix aliases wire buffer: a00=%v", m.At(0, 0))
	}
}

// TestWireRectRoundTrip: rectangular envelopes survive JSON and decode
// back through DecodeGeneral to an identical *Rect.
func TestWireRectRoundTrip(t *testing.T) {
	m := sparse.RectFromDense(3, 2, []float64{
		1, 0,
		0, 2,
		3, 4,
	})
	raw, err := json.Marshal(sparse.EncodeRect(m))
	if err != nil {
		t.Fatal(err)
	}
	var w sparse.WireMatrix
	if err := json.Unmarshal(raw, &w); err != nil {
		t.Fatal(err)
	}
	got, err := w.DecodeGeneral()
	if err != nil {
		t.Fatal(err)
	}
	r, ok := got.(*sparse.Rect)
	if !ok {
		t.Fatalf("DecodeGeneral returned %T, want *sparse.Rect", got)
	}
	if r.Rows() != 3 || r.Cols() != 2 {
		t.Fatalf("shape %dx%d, want 3x2", r.Rows(), r.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			if r.At(i, j) != m.At(i, j) {
				t.Fatalf("entry (%d,%d): %g vs %g", i, j, r.At(i, j), m.At(i, j))
			}
		}
	}
}

// TestWireRectCOO: the triplet form sums duplicates and sorts rows for
// rectangular shapes too.
func TestWireRectCOO(t *testing.T) {
	w := sparse.WireMatrix{
		Format: sparse.WireCOO,
		NRows:  2, NCols: 3,
		Rows: []int{1, 0, 1, 1},
		Cols: []int{2, 1, 0, 2},
		Vals: []float64{5, 7, 1, 6},
	}
	got, err := w.DecodeGeneral()
	if err != nil {
		t.Fatal(err)
	}
	r := got.(*sparse.Rect)
	if r.NNZ() != 3 {
		t.Fatalf("nnz = %d, want 3 (duplicates summed)", r.NNZ())
	}
	if r.At(0, 1) != 7 || r.At(1, 0) != 1 || r.At(1, 2) != 11 {
		t.Fatalf("decoded entries wrong: At(0,1)=%g At(1,0)=%g At(1,2)=%g", r.At(0, 1), r.At(1, 0), r.At(1, 2))
	}
}

// TestWireGeneralShapes: DecodeGeneral keeps *CSR for square shapes,
// Decode rejects rectangular envelopes, and shape declarations must be
// coherent.
func TestWireGeneralShapes(t *testing.T) {
	sq := sparse.EncodeCSR(sparse.Poisson1D(4))

	got, err := sq.DecodeGeneral()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got.(*sparse.CSR); !ok {
		t.Fatalf("square DecodeGeneral returned %T, want *sparse.CSR", got)
	}

	rect := sparse.EncodeRect(sparse.RectFromDense(3, 2, []float64{1, 0, 0, 2, 3, 4}))
	if _, err := rect.Decode(); !errors.Is(err, sparse.ErrWire) {
		t.Errorf("Decode of a rectangular envelope = %v, want ErrWire", err)
	}

	// n_rows/n_cols spelling of a square shape still decodes to CSR.
	sq2 := *sq
	sq2.NRows, sq2.NCols, sq2.N = sq.N, sq.N, 0
	if _, err := sq2.Decode(); err != nil {
		t.Errorf("square-by-n_rows Decode: %v", err)
	}

	bad := *sq
	bad.NRows, bad.NCols = sq.N+1, sq.N+1 // disagrees with N
	if _, err := bad.Decode(); !errors.Is(err, sparse.ErrWire) {
		t.Errorf("conflicting shape Decode = %v, want ErrWire", err)
	}

	mm := sparse.WireMatrix{Format: sparse.WireMatrixMarket, NRows: 3, NCols: 2}
	if _, err := mm.DecodeGeneral(); !errors.Is(err, sparse.ErrWire) {
		t.Errorf("rectangular matrixmarket DecodeGeneral = %v, want ErrWire", err)
	}

	// The dimension bound applies to both dimensions.
	if _, err := rect.DecodeGeneralLimited(2); !errors.Is(err, sparse.ErrWire) {
		t.Errorf("DecodeGeneralLimited(2) on 3x2 = %v, want ErrWire", err)
	}
}
