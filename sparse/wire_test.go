package sparse_test

import (
	"encoding/json"
	"errors"
	"testing"

	"vrcg/sparse"
)

// matEqual compares two matrices entrywise.
func matEqual(t *testing.T, a, b *sparse.CSR) {
	t.Helper()
	if a.Dim() != b.Dim() {
		t.Fatalf("dims %d vs %d", a.Dim(), b.Dim())
	}
	for i := 0; i < a.Dim(); i++ {
		for j := 0; j < a.Dim(); j++ {
			if a.At(i, j) != b.At(i, j) {
				t.Fatalf("entry (%d,%d): %g vs %g", i, j, a.At(i, j), b.At(i, j))
			}
		}
	}
}

func TestWireCSRRoundTrip(t *testing.T) {
	a := sparse.Poisson2D(5)
	blob, err := json.Marshal(sparse.EncodeCSR(a))
	if err != nil {
		t.Fatal(err)
	}
	var w sparse.WireMatrix
	if err := json.Unmarshal(blob, &w); err != nil {
		t.Fatal(err)
	}
	got, err := w.Decode()
	if err != nil {
		t.Fatal(err)
	}
	matEqual(t, a, got)
}

func TestWireCOODecode(t *testing.T) {
	// 2x2 SPD with a duplicate entry that must be summed.
	w := sparse.WireMatrix{
		Format: sparse.WireCOO,
		N:      2,
		Rows:   []int{0, 0, 1, 1, 0},
		Cols:   []int{0, 1, 0, 1, 0},
		Vals:   []float64{1.5, -1, -1, 2, 0.5},
	}
	got, err := w.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if got.At(0, 0) != 2 || got.At(0, 1) != -1 || got.At(1, 1) != 2 {
		t.Fatalf("bad decode: %v %v %v", got.At(0, 0), got.At(0, 1), got.At(1, 1))
	}
}

func TestWireMatrixMarketDecode(t *testing.T) {
	src := "%%MatrixMarket matrix coordinate real symmetric\n2 2 3\n1 1 2\n2 1 -1\n2 2 2\n"
	w := sparse.WireMatrix{Format: sparse.WireMatrixMarket, MatrixMarket: src}
	got, err := w.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim() != 2 || got.At(0, 1) != -1 {
		t.Fatalf("bad decode: n=%d a01=%v", got.Dim(), got.At(0, 1))
	}
}

func TestWireDecodeRejectsMalformed(t *testing.T) {
	cases := map[string]sparse.WireMatrix{
		"unknown format": {Format: "dense", N: 2},
		"csr bad n":      {Format: sparse.WireCSR, N: 0},
		"csr short row_ptr": {Format: sparse.WireCSR, N: 2,
			RowPtr: []int{0, 1}, ColIdx: []int{0}, Vals: []float64{1}},
		"csr non-monotone": {Format: sparse.WireCSR, N: 2,
			RowPtr: []int{0, 2, 1}, ColIdx: []int{0, 1}, Vals: []float64{1, 1}},
		"csr col out of range": {Format: sparse.WireCSR, N: 2,
			RowPtr: []int{0, 1, 2}, ColIdx: []int{0, 5}, Vals: []float64{1, 1}},
		"csr length mismatch": {Format: sparse.WireCSR, N: 2,
			RowPtr: []int{0, 1, 3}, ColIdx: []int{0, 1}, Vals: []float64{1, 1}},
		"csr duplicate column": {Format: sparse.WireCSR, N: 2,
			RowPtr: []int{0, 2, 3}, ColIdx: []int{0, 0, 1}, Vals: []float64{1, 1, 2}},
		"coo ragged": {Format: sparse.WireCOO, N: 2,
			Rows: []int{0}, Cols: []int{0, 1}, Vals: []float64{1}},
		"coo out of range": {Format: sparse.WireCOO, N: 2,
			Rows: []int{2}, Cols: []int{0}, Vals: []float64{1}},
		"mm garbage": {Format: sparse.WireMatrixMarket, MatrixMarket: "not a matrix"},
	}
	for name, w := range cases {
		if _, err := w.Decode(); !errors.Is(err, sparse.ErrWire) {
			t.Errorf("%s: want ErrWire, got %v", name, err)
		}
	}
}

// TestWireDecodeLimited: a tiny envelope declaring a huge order is
// rejected before any order-sized allocation, for every format.
func TestWireDecodeLimited(t *testing.T) {
	huge := []sparse.WireMatrix{
		{Format: sparse.WireCOO, N: 2_000_000_000},
		{Format: sparse.WireCSR, N: 2_000_000_000},
		{Format: sparse.WireMatrixMarket,
			MatrixMarket: "%%MatrixMarket matrix coordinate real general\n2000000000 2000000000 0\n"},
	}
	for i, w := range huge {
		if _, err := w.DecodeLimited(1 << 20); !errors.Is(err, sparse.ErrWire) {
			t.Errorf("case %d: want ErrWire for oversized order, got %v", i, err)
		}
	}
	// Within the limit everything still decodes.
	ok := sparse.WireMatrix{Format: sparse.WireCOO, N: 2,
		Rows: []int{0, 1}, Cols: []int{0, 1}, Vals: []float64{1, 1}}
	if _, err := ok.DecodeLimited(4); err != nil {
		t.Fatal(err)
	}
}

func TestWireDecodeCopiesArrays(t *testing.T) {
	w := sparse.WireMatrix{
		Format: sparse.WireCSR,
		N:      2,
		RowPtr: []int{0, 1, 2},
		ColIdx: []int{0, 1},
		Vals:   []float64{3, 4},
	}
	m, err := w.Decode()
	if err != nil {
		t.Fatal(err)
	}
	w.Vals[0] = 99 // caller reuses its buffer; the matrix must not see it
	if m.At(0, 0) != 3 {
		t.Fatalf("decoded matrix aliases wire buffer: a00=%v", m.At(0, 0))
	}
}
