package sparse

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// This file is the matrix wire codec: a JSON-friendly envelope
// (WireMatrix) that carries a sparse matrix across a network boundary
// in any of three formats, with full validation on decode — the
// constructors in this package panic on malformed input (a programming
// error in process), but bytes off the wire are data, not code, and
// must fail with errors.

// Wire format names accepted by WireMatrix.
const (
	// WireCSR carries compressed sparse row arrays directly.
	WireCSR = "csr"
	// WireCOO carries coordinate triplets (duplicates are summed).
	WireCOO = "coo"
	// WireMatrixMarket carries a MatrixMarket coordinate-format
	// document as text.
	WireMatrixMarket = "matrixmarket"
)

// ErrWire reports a malformed wire matrix; every Decode failure wraps
// it.
var ErrWire = errors.New("sparse: malformed wire matrix")

// WireMatrix is the JSON envelope for a sparse matrix. Format selects
// which fields are meaningful:
//
//   - "csr": N, RowPtr (length rows+1), ColIdx, Vals
//   - "coo": N, Rows, Cols, Vals (parallel triplet arrays)
//   - "matrixmarket": MatrixMarket (the .mtx document, verbatim)
//
// Square matrices declare N alone. Rectangular ones (least-squares
// operators) declare NRows and NCols instead and must decode through
// DecodeGeneral; the MatrixMarket form stays square-only. Decode
// validates and builds the CSR form; EncodeCSR produces the "csr"
// envelope from a matrix.
type WireMatrix struct {
	Format string `json:"format"`
	N      int    `json:"n,omitempty"`

	// NRows/NCols declare a rectangular shape for formats "csr" and
	// "coo"; both zero means square of order N.
	NRows int `json:"n_rows,omitempty"`
	NCols int `json:"n_cols,omitempty"`

	// CSR fields.
	RowPtr []int `json:"row_ptr,omitempty"`
	ColIdx []int `json:"col_idx,omitempty"`

	// COO fields (Vals is shared with the CSR form).
	Rows []int `json:"rows,omitempty"`
	Cols []int `json:"cols,omitempty"`

	Vals []float64 `json:"vals,omitempty"`

	// MatrixMarket is the verbatim .mtx text for format
	// "matrixmarket".
	MatrixMarket string `json:"matrix_market,omitempty"`
}

// EncodeCSR wraps a matrix in its wire envelope (format "csr"). The
// arrays are shared with the matrix, not copied; treat the result as
// read-only.
func EncodeCSR(m *CSR) *WireMatrix {
	return &WireMatrix{
		Format: WireCSR,
		N:      m.n,
		RowPtr: m.rowPtr,
		ColIdx: m.colIdx,
		Vals:   m.vals,
	}
}

// EncodeRect wraps a rectangular matrix in its wire envelope (format
// "csr" with NRows/NCols). The arrays are shared with the matrix, not
// copied; treat the result as read-only.
func EncodeRect(m *Rect) *WireMatrix {
	return &WireMatrix{
		Format: WireCSR,
		NRows:  m.rows,
		NCols:  m.cols,
		RowPtr: m.rowPtr,
		ColIdx: m.colIdx,
		Vals:   m.vals,
	}
}

// Decode validates the envelope and returns the matrix in CSR form.
// All failures wrap ErrWire. The order is unbounded; network layers
// should use DecodeLimited, since a tiny envelope can declare a huge n
// whose CSR arrays alone would exhaust memory. Envelopes declaring a
// rectangular shape are rejected here — use DecodeGeneral.
func (w *WireMatrix) Decode() (*CSR, error) {
	return w.DecodeLimited(0)
}

// DecodeGeneral decodes either a square or a rectangular envelope,
// returning *CSR for square shapes and *Rect for rectangular ones.
// See DecodeGeneralLimited for the bounded variant network layers use.
func (w *WireMatrix) DecodeGeneral() (Matrix, error) {
	return w.DecodeGeneralLimited(0)
}

// DecodeGeneralLimited is DecodeGeneral with an upper bound on both
// dimensions (0 means unlimited), enforced before any
// dimension-sized allocation.
func (w *WireMatrix) DecodeGeneralLimited(maxOrder int) (Matrix, error) {
	if w.NRows == 0 && w.NCols == 0 {
		return w.DecodeLimited(maxOrder)
	}
	rows, cols := w.NRows, w.NCols
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("%w: rectangular shape needs n_rows > 0 and n_cols > 0, got %dx%d",
			ErrWire, rows, cols)
	}
	if w.N != 0 && w.N != rows {
		return nil, fmt.Errorf("%w: n %d disagrees with n_rows %d (declare one shape)", ErrWire, w.N, rows)
	}
	if err := checkOrder(rows, maxOrder); err != nil {
		return nil, err
	}
	if err := checkOrder(cols, maxOrder); err != nil {
		return nil, err
	}
	if rows == cols {
		// A square general decode still yields *CSR (DecodeLimited
		// normalizes the n_rows/n_cols spelling), so every square
		// consumer — preconditioners, symmetry probes — keeps working.
		return w.DecodeLimited(maxOrder)
	}
	switch w.Format {
	case WireCSR:
		return w.decodeRectCSR(rows, cols)
	case WireCOO:
		return w.decodeRectCOO(rows, cols)
	case WireMatrixMarket:
		return nil, fmt.Errorf("%w: matrixmarket wire form is square-only (use csr or coo with n_rows/n_cols)", ErrWire)
	default:
		return nil, fmt.Errorf("%w: unknown format %q (want %s, %s, or %s)",
			ErrWire, w.Format, WireCSR, WireCOO, WireMatrixMarket)
	}
}

// DecodeLimited is Decode with an upper bound on the matrix order
// (0 means unlimited). The bound is enforced before any order-sized
// allocation happens, for every wire format — including the dimensions
// declared inside a MatrixMarket header.
func (w *WireMatrix) DecodeLimited(maxOrder int) (*CSR, error) {
	if w.NRows != 0 || w.NCols != 0 {
		if w.NRows != w.NCols {
			return nil, fmt.Errorf("%w: envelope declares a %dx%d rectangular shape; decode it with DecodeGeneral",
				ErrWire, w.NRows, w.NCols)
		}
		if w.N != 0 && w.N != w.NRows {
			return nil, fmt.Errorf("%w: n %d disagrees with n_rows %d (declare one shape)", ErrWire, w.N, w.NRows)
		}
		sq := *w
		sq.N, sq.NRows, sq.NCols = w.NRows, 0, 0
		w = &sq
	}
	switch w.Format {
	case WireCSR:
		if err := checkOrder(w.N, maxOrder); err != nil {
			return nil, err
		}
		return w.decodeCSR()
	case WireCOO:
		if err := checkOrder(w.N, maxOrder); err != nil {
			return nil, err
		}
		return w.decodeCOO()
	case WireMatrixMarket:
		if maxOrder > 0 {
			if n, err := peekMatrixMarketOrder(w.MatrixMarket); err == nil {
				// Parse errors fall through to the real reader for a
				// better message.
				if err := checkOrder(n, maxOrder); err != nil {
					return nil, err
				}
			}
		}
		m, err := ReadMatrixMarket(strings.NewReader(w.MatrixMarket))
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrWire, err)
		}
		return m, nil
	default:
		return nil, fmt.Errorf("%w: unknown format %q (want %s, %s, or %s)",
			ErrWire, w.Format, WireCSR, WireCOO, WireMatrixMarket)
	}
}

func checkOrder(n, maxOrder int) error {
	if maxOrder > 0 && n > maxOrder {
		return fmt.Errorf("%w: order %d exceeds the permitted maximum %d", ErrWire, n, maxOrder)
	}
	return nil
}

// peekMatrixMarketOrder reads just the size line of a MatrixMarket
// document, so DecodeLimited can bound the order before the full parse
// allocates anything order-sized.
func peekMatrixMarketOrder(src string) (int, error) {
	first := true
	for len(src) > 0 {
		line := src
		if i := strings.IndexByte(src, '\n'); i >= 0 {
			line, src = src[:i], src[i+1:]
		} else {
			src = ""
		}
		line = strings.TrimSpace(line)
		if first {
			first = false
			continue // header line
		}
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		var rows, cols, nnz int
		if _, err := fmt.Sscanf(line, "%d %d %d", &rows, &cols, &nnz); err != nil {
			return 0, fmt.Errorf("sparse: bad size line %q", line)
		}
		if cols > rows {
			rows = cols
		}
		return rows, nil
	}
	return 0, fmt.Errorf("sparse: missing size line")
}

func (w *WireMatrix) decodeCSR() (*CSR, error) {
	n := w.N
	if n <= 0 {
		return nil, fmt.Errorf("%w: csr needs n > 0, got %d", ErrWire, n)
	}
	if len(w.RowPtr) != n+1 {
		return nil, fmt.Errorf("%w: row_ptr length %d, want n+1 = %d", ErrWire, len(w.RowPtr), n+1)
	}
	if w.RowPtr[0] != 0 {
		return nil, fmt.Errorf("%w: row_ptr must start at 0, got %d", ErrWire, w.RowPtr[0])
	}
	for i := 0; i < n; i++ {
		if w.RowPtr[i+1] < w.RowPtr[i] {
			return nil, fmt.Errorf("%w: row_ptr not monotone at row %d (%d then %d)",
				ErrWire, i, w.RowPtr[i], w.RowPtr[i+1])
		}
	}
	nnz := w.RowPtr[n]
	if len(w.ColIdx) != nnz || len(w.Vals) != nnz {
		return nil, fmt.Errorf("%w: row_ptr promises %d entries but col_idx has %d and vals has %d",
			ErrWire, nnz, len(w.ColIdx), len(w.Vals))
	}
	for k, j := range w.ColIdx {
		if j < 0 || j >= n {
			return nil, fmt.Errorf("%w: col_idx[%d] = %d outside [0,%d)", ErrWire, k, j, n)
		}
	}
	// NewCSR copies nothing, so clone the arrays: wire buffers often
	// alias decoder scratch the caller will reuse.
	rowPtr := append([]int(nil), w.RowPtr...)
	colIdx := append([]int(nil), w.ColIdx...)
	vals := append([]float64(nil), w.Vals...)
	m := NewCSR(n, rowPtr, colIdx, vals)
	// NewCSR sorts each row but keeps duplicate columns, which would
	// make MulVec (sums them) disagree with At/Diag (sees one). The
	// COO path sums duplicates by design; the CSR wire form asserts
	// the matrix is already assembled, so duplicates are an error.
	for i := 0; i < n; i++ {
		for p := rowPtr[i] + 1; p < rowPtr[i+1]; p++ {
			if colIdx[p] == colIdx[p-1] {
				return nil, fmt.Errorf("%w: duplicate entry (%d,%d) in csr form (use coo to sum duplicates)",
					ErrWire, i, colIdx[p])
			}
		}
	}
	return m, nil
}

func (w *WireMatrix) decodeRectCSR(rows, cols int) (*Rect, error) {
	if len(w.RowPtr) != rows+1 {
		return nil, fmt.Errorf("%w: row_ptr length %d, want n_rows+1 = %d", ErrWire, len(w.RowPtr), rows+1)
	}
	if w.RowPtr[0] != 0 {
		return nil, fmt.Errorf("%w: row_ptr must start at 0, got %d", ErrWire, w.RowPtr[0])
	}
	for i := 0; i < rows; i++ {
		if w.RowPtr[i+1] < w.RowPtr[i] {
			return nil, fmt.Errorf("%w: row_ptr not monotone at row %d (%d then %d)",
				ErrWire, i, w.RowPtr[i], w.RowPtr[i+1])
		}
	}
	nnz := w.RowPtr[rows]
	if len(w.ColIdx) != nnz || len(w.Vals) != nnz {
		return nil, fmt.Errorf("%w: row_ptr promises %d entries but col_idx has %d and vals has %d",
			ErrWire, nnz, len(w.ColIdx), len(w.Vals))
	}
	for k, j := range w.ColIdx {
		if j < 0 || j >= cols {
			return nil, fmt.Errorf("%w: col_idx[%d] = %d outside [0,%d)", ErrWire, k, j, cols)
		}
	}
	rowPtr := append([]int(nil), w.RowPtr...)
	colIdx := append([]int(nil), w.ColIdx...)
	vals := append([]float64(nil), w.Vals...)
	m := NewRect(rows, cols, rowPtr, colIdx, vals)
	// Same assembled-form contract as the square CSR wire form:
	// duplicates are an error, not a summation request.
	for i := 0; i < rows; i++ {
		for p := rowPtr[i] + 1; p < rowPtr[i+1]; p++ {
			if colIdx[p] == colIdx[p-1] {
				return nil, fmt.Errorf("%w: duplicate entry (%d,%d) in csr form (use coo to sum duplicates)",
					ErrWire, i, colIdx[p])
			}
		}
	}
	return m, nil
}

func (w *WireMatrix) decodeRectCOO(rows, cols int) (*Rect, error) {
	if len(w.Rows) != len(w.Cols) || len(w.Rows) != len(w.Vals) {
		return nil, fmt.Errorf("%w: coo triplet arrays disagree: rows %d, cols %d, vals %d",
			ErrWire, len(w.Rows), len(w.Cols), len(w.Vals))
	}
	for k := range w.Rows {
		i, j := w.Rows[k], w.Cols[k]
		if i < 0 || i >= rows || j < 0 || j >= cols {
			return nil, fmt.Errorf("%w: entry %d at (%d,%d) outside %dx%d", ErrWire, k, i, j, rows, cols)
		}
	}
	// Assemble by counting sort on rows, then sum duplicates within each
	// sorted row (the COO contract), compacting in place.
	count := make([]int, rows+1)
	for _, i := range w.Rows {
		count[i+1]++
	}
	for i := 0; i < rows; i++ {
		count[i+1] += count[i]
	}
	nnz := len(w.Rows)
	colIdx := make([]int, nnz)
	vals := make([]float64, nnz)
	next := append([]int(nil), count...)
	for k := range w.Rows {
		p := next[w.Rows[k]]
		next[w.Rows[k]]++
		colIdx[p] = w.Cols[k]
		vals[p] = w.Vals[k]
	}
	rowPtr := make([]int, rows+1)
	out := 0
	for i := 0; i < rows; i++ {
		rowPtr[i] = out
		lo, hi := count[i], count[i+1]
		sort.Sort(rowView{cols: colIdx[lo:hi], vals: vals[lo:hi]})
		for p := lo; p < hi; p++ {
			if out > rowPtr[i] && colIdx[out-1] == colIdx[p] {
				vals[out-1] += vals[p]
				continue
			}
			colIdx[out] = colIdx[p]
			vals[out] = vals[p]
			out++
		}
	}
	rowPtr[rows] = out
	return NewRect(rows, cols, rowPtr, colIdx[:out], vals[:out]), nil
}

func (w *WireMatrix) decodeCOO() (*CSR, error) {
	n := w.N
	if n <= 0 {
		return nil, fmt.Errorf("%w: coo needs n > 0, got %d", ErrWire, n)
	}
	if len(w.Rows) != len(w.Cols) || len(w.Rows) != len(w.Vals) {
		return nil, fmt.Errorf("%w: coo triplet arrays disagree: rows %d, cols %d, vals %d",
			ErrWire, len(w.Rows), len(w.Cols), len(w.Vals))
	}
	coo := NewCOO(n)
	for k := range w.Rows {
		i, j := w.Rows[k], w.Cols[k]
		if i < 0 || i >= n || j < 0 || j >= n {
			return nil, fmt.Errorf("%w: entry %d at (%d,%d) outside %dx%d", ErrWire, k, i, j, n, n)
		}
		coo.Add(i, j, w.Vals[k])
	}
	return coo.ToCSR(), nil
}
