package sparse

import (
	"fmt"
	"sort"

	"vrcg/internal/vec"
)

// DIA is a diagonal-storage sparse matrix: each stored diagonal has a
// fixed offset k (k=0 is the main diagonal, k>0 superdiagonals, k<0
// subdiagonals) and a full-length value array in which only positions
// valid for that offset are meaningful. Structured grid operators
// (Poisson stencils) are naturally banded, making DIA both compact and
// stride-friendly — it is the format the depth model's vectorized matvec
// assumes.
type DIA struct {
	n       int
	offsets []int       // sorted ascending
	diags   [][]float64 // diags[d][i] multiplies x[i+offsets[d]] in row i

	// rangeFn caches the row-range kernel as a method value so pooled
	// dispatch (MulVecPool) allocates nothing per call.
	rangeFn vec.RowKernel
}

// NewDIA builds a DIA matrix of order n from offset -> diagonal values.
// Each diagonal slice must have length n; entry i of diagonal with offset
// k contributes A[i, i+k] when 0 <= i+k < n (values outside that range
// are ignored).
func NewDIA(n int, diagonals map[int][]float64) *DIA {
	if n <= 0 {
		panic("sparse: NewDIA requires n > 0")
	}
	offsets := make([]int, 0, len(diagonals))
	for k, dv := range diagonals {
		if len(dv) != n {
			panic(fmt.Sprintf("sparse: diagonal %d has length %d, want %d", k, len(dv), n))
		}
		if k <= -n || k >= n {
			panic(fmt.Sprintf("sparse: diagonal offset %d out of range for n=%d", k, n))
		}
		offsets = append(offsets, k)
	}
	sort.Ints(offsets)
	m := &DIA{n: n, offsets: offsets, diags: make([][]float64, len(offsets))}
	for d, k := range offsets {
		cp := make([]float64, n)
		copy(cp, diagonals[k])
		m.diags[d] = cp
	}
	m.rangeFn = m.mulRange
	return m
}

// Dim returns the order of the matrix.
func (m *DIA) Dim() int { return m.n }

// Offsets returns the stored diagonal offsets in ascending order.
func (m *DIA) Offsets() []int {
	out := make([]int, len(m.offsets))
	copy(out, m.offsets)
	return out
}

// At returns A[i,j] (zero when the diagonal j-i is not stored).
func (m *DIA) At(i, j int) float64 {
	k := j - i
	d := sort.SearchInts(m.offsets, k)
	if d < len(m.offsets) && m.offsets[d] == k {
		return m.diags[d][i]
	}
	return 0
}

// MulVec computes dst = A*x diagonal by diagonal.
func (m *DIA) MulVec(dst, x []float64) {
	checkMul(m, dst, x)
	m.mulRange(0, m.n, dst, x)
}

// mulRange computes rows [rlo, rhi) of dst = A*x, accumulating each row
// in ascending diagonal order (the same order for every row split, so
// pooled and serial products are bitwise identical).
func (m *DIA) mulRange(rlo, rhi int, dst, x []float64) {
	for i := rlo; i < rhi; i++ {
		dst[i] = 0
	}
	for d, k := range m.offsets {
		dv := m.diags[d]
		lo, hi := rlo, rhi
		if k > 0 && hi > m.n-k {
			hi = m.n - k
		}
		if k < 0 && lo < -k {
			lo = -k
		}
		for i := lo; i < hi; i++ {
			dst[i] += dv[i] * x[i+k]
		}
	}
}

// MulVecPool computes dst = A*x in parallel over the pool by splitting
// the rows into near-equal chunks (diagonal storage does uniform work
// per row). Small systems, a nil pool, or a serial pool fall back to
// the serial MulVec. The result is bitwise identical to MulVec.
func (m *DIA) MulVecPool(pool *Pool, dst, x []float64) {
	checkMul(m, dst, x)
	if pool == nil || pool.Workers() < 2 || !pool.RowMulVec(m.n, dst, x, m.rangeFn) {
		m.MulVec(dst, x)
	}
}

// MaxRowNonzeros returns the maximum count of structurally nonzero
// entries in any row.
func (m *DIA) MaxRowNonzeros() int {
	maxNZ := 0
	for i := 0; i < m.n; i++ {
		nz := 0
		for d, k := range m.offsets {
			j := i + k
			if j >= 0 && j < m.n && m.diags[d][i] != 0 {
				nz++
			}
		}
		if nz > maxNZ {
			maxNZ = nz
		}
	}
	return maxNZ
}

// NNZ counts the structurally valid nonzero entries.
func (m *DIA) NNZ() int {
	nnz := 0
	for d, k := range m.offsets {
		lo, hi := 0, m.n
		if k > 0 {
			hi = m.n - k
		} else if k < 0 {
			lo = -k
		}
		for i := lo; i < hi; i++ {
			if m.diags[d][i] != 0 {
				nnz++
			}
		}
	}
	return nnz
}

// ToCSR converts to CSR form.
func (m *DIA) ToCSR() *CSR {
	coo := NewCOO(m.n)
	for d, k := range m.offsets {
		lo, hi := 0, m.n
		if k > 0 {
			hi = m.n - k
		} else if k < 0 {
			lo = -k
		}
		for i := lo; i < hi; i++ {
			if v := m.diags[d][i]; v != 0 {
				coo.Add(i, i+k, v)
			}
		}
	}
	return coo.ToCSR()
}

var (
	_ Matrix     = (*DIA)(nil)
	_ Sparse     = (*DIA)(nil)
	_ PoolMulVec = (*DIA)(nil)
)
