package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"vrcg/internal/vec"
)

// This file implements the NIST Matrix Market exchange format
// (coordinate, real, general/symmetric) so the solvers can consume
// matrices from the standard sparse collections, and array-format
// vectors for right-hand sides.

// ReadMatrixMarket parses a Matrix Market coordinate-format matrix. It
// accepts "general" and "symmetric" qualifiers (symmetric entries are
// mirrored), "real", "integer" or "pattern" fields (pattern entries get
// value 1), and requires a square matrix.
func ReadMatrixMarket(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)

	if !sc.Scan() {
		return nil, fmt.Errorf("sparse: empty Matrix Market stream")
	}
	headerLine := strings.TrimSpace(sc.Text())
	header := strings.Fields(strings.ToLower(headerLine))
	if len(header) < 5 || header[0] != "%%matrixmarket" {
		return nil, fmt.Errorf("sparse: bad Matrix Market header %q", headerLine)
	}
	if header[1] != "matrix" || header[2] != "coordinate" {
		return nil, fmt.Errorf("sparse: only 'matrix coordinate' supported, got %q", headerLine)
	}
	field := header[3] // real | integer | pattern
	switch field {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("sparse: unsupported field type %q", field)
	}
	sym := header[4] // general | symmetric
	switch sym {
	case "general", "symmetric":
	default:
		return nil, fmt.Errorf("sparse: unsupported symmetry %q", sym)
	}

	// Skip comments, read the size line.
	var rows, cols, nnz int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscanf(line, "%d %d %d", &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("sparse: bad size line %q: %v", line, err)
		}
		break
	}
	if rows == 0 {
		return nil, fmt.Errorf("sparse: missing size line")
	}
	if rows != cols {
		return nil, fmt.Errorf("sparse: matrix is %dx%d, need square", rows, cols)
	}

	coo := NewCOO(rows)
	read := 0
	for read < nnz && sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		want := 3
		if field == "pattern" {
			want = 2
		}
		if len(f) < want {
			return nil, fmt.Errorf("sparse: bad entry line %q", line)
		}
		i, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad row index %q: %v", f[0], err)
		}
		j, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad column index %q: %v", f[1], err)
		}
		v := 1.0
		if field != "pattern" {
			v, err = strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, fmt.Errorf("sparse: bad value %q: %v", f[2], err)
			}
		}
		if i < 1 || i > rows || j < 1 || j > cols {
			return nil, fmt.Errorf("sparse: entry (%d,%d) outside %dx%d", i, j, rows, cols)
		}
		// Matrix Market is 1-based.
		if sym == "symmetric" && i != j {
			coo.AddSym(i-1, j-1, v)
		} else {
			coo.Add(i-1, j-1, v)
		}
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sparse: read error: %v", err)
	}
	if read != nnz {
		return nil, fmt.Errorf("sparse: header promised %d entries, found %d", nnz, read)
	}
	return coo.ToCSR(), nil
}

// WriteMatrixMarket emits the matrix in coordinate real format. When
// symmetric is true only the lower triangle is written with the
// "symmetric" qualifier (the matrix must actually be symmetric; the
// caller can check with IsSymmetric).
func WriteMatrixMarket(w io.Writer, m *CSR, symmetric bool) error {
	qual := "general"
	if symmetric {
		qual = "symmetric"
	}
	n := m.Dim()
	// Count the entries to be written.
	count := 0
	for i := 0; i < n; i++ {
		m.ScanRow(i, func(j int, _ float64) {
			if !symmetric || j <= i {
				count++
			}
		})
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real %s\n", qual)
	fmt.Fprintf(bw, "%% written by vrcg\n")
	fmt.Fprintf(bw, "%d %d %d\n", n, n, count)
	var err error
	for i := 0; i < n && err == nil; i++ {
		m.ScanRow(i, func(j int, v float64) {
			if err != nil || (symmetric && j > i) {
				return
			}
			_, err = fmt.Fprintf(bw, "%d %d %.17g\n", i+1, j+1, v)
		})
	}
	if err != nil {
		return err
	}
	return bw.Flush()
}

// ReadMatrixMarketVector parses a Matrix Market array-format real vector
// (one column).
func ReadMatrixMarketVector(r io.Reader) ([]float64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("sparse: empty vector stream")
	}
	header := strings.Fields(strings.ToLower(strings.TrimSpace(sc.Text())))
	if len(header) < 4 || header[0] != "%%matrixmarket" || header[1] != "matrix" || header[2] != "array" {
		return nil, fmt.Errorf("sparse: expected 'matrix array' header")
	}
	var rows, cols int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscanf(line, "%d %d", &rows, &cols); err != nil {
			return nil, fmt.Errorf("sparse: bad size line %q: %v", line, err)
		}
		break
	}
	if cols != 1 {
		return nil, fmt.Errorf("sparse: vector must have one column, got %d", cols)
	}
	out := vec.New(rows)
	idx := 0
	for idx < rows && sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		v, err := strconv.ParseFloat(line, 64)
		if err != nil {
			return nil, fmt.Errorf("sparse: bad vector value %q: %v", line, err)
		}
		out[idx] = v
		idx++
	}
	if idx != rows {
		return nil, fmt.Errorf("sparse: vector promised %d values, found %d", rows, idx)
	}
	return out, nil
}

// WriteMatrixMarketVector emits a vector in array real format.
func WriteMatrixMarketVector(w io.Writer, v []float64) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%%%%MatrixMarket matrix array real general\n")
	fmt.Fprintf(bw, "%d 1\n", len(v))
	for _, x := range v {
		if _, err := fmt.Fprintf(bw, "%.17g\n", x); err != nil {
			return err
		}
	}
	return bw.Flush()
}
