package sparse

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Shaped is a Matrix that may be rectangular. Dim returns the row count
// for Shaped operators (so row-space length checks keep working through
// square-only call sites); Rows and Cols report the true shape.
type Shaped interface {
	Matrix
	// Rows returns the number of rows (the length of MulVec's dst).
	Rows() int
	// Cols returns the number of columns (the length of MulVec's x).
	Cols() int
}

// Dims returns the (rows, cols) shape of an operator: the declared shape
// for Shaped operators, (Dim, Dim) otherwise.
func Dims(a Matrix) (rows, cols int) {
	if s, ok := a.(Shaped); ok {
		return s.Rows(), s.Cols()
	}
	n := a.Dim()
	return n, n
}

// TransposeMulVec is a Matrix that can also apply its transpose. The
// normal-equations methods (cgnr, lsqr) require it: they iterate on
// AᵀA x = Aᵀb without ever forming the product matrix.
type TransposeMulVec interface {
	Matrix
	// MulVecT computes dst = Aᵀ*x. dst has the column count, x the row
	// count; they must not alias.
	MulVecT(dst, x []float64)
}

// PoolMulVecT is a TransposeMulVec that also offers a worker-pool
// parallel transpose product (CSR and Rect serve it from a cached
// explicit transpose, so the parallel kernel is a race-free row-wise
// gather, not a scattered accumulation).
type PoolMulVecT interface {
	TransposeMulVec
	// MulVecTPool computes dst = Aᵀ*x over the pool, falling back to
	// the serial product when parallelism is not profitable.
	MulVecTPool(pool *Pool, dst, x []float64)
}

// PooledMulVecT computes dst = aᵀ*x through the pool when the operator
// supports it (and pool is non-nil), and serially otherwise. It is the
// single dispatch point the least-squares solver hot paths use.
func PooledMulVecT(a TransposeMulVec, pool *Pool, dst, x []float64) {
	if pool != nil {
		if pm, ok := a.(PoolMulVecT); ok {
			pm.MulVecTPool(pool, dst, x)
			return
		}
	}
	a.MulVecT(dst, x)
}

// transposeArrays builds the CSR arrays of the transpose of a rows×cols
// CSR structure via a counting sort over columns. Traversing the source
// row-major leaves each transposed row's indices already sorted.
func transposeArrays(rows, cols int, rowPtr, colIdx []int, vals []float64) (tPtr, tIdx []int, tVals []float64) {
	nnz := len(vals)
	tPtr = make([]int, cols+1)
	for _, j := range colIdx {
		tPtr[j+1]++
	}
	for j := 0; j < cols; j++ {
		tPtr[j+1] += tPtr[j]
	}
	tIdx = make([]int, nnz)
	tVals = make([]float64, nnz)
	cursor := make([]int, cols)
	copy(cursor, tPtr[:cols])
	for i := 0; i < rows; i++ {
		for p := rowPtr[i]; p < rowPtr[i+1]; p++ {
			j := colIdx[p]
			q := cursor[j]
			cursor[j]++
			tIdx[q] = i
			tVals[q] = vals[p]
		}
	}
	return tPtr, tIdx, tVals
}

// Rect is a rectangular rows×cols compressed-sparse-row matrix — the
// operator type of the least-squares tier (cgnr, lsqr). Storage follows
// CSR exactly; Dim returns the row count, so row-space length checks
// written against square operators stay correct.
//
// The transpose product is served from a lazily built, atomically cached
// explicit transpose, which the value-mutating methods (Scale,
// SetValues) invalidate. Structure (rowPtr/colIdx) is immutable after
// construction, which is what lets CloneValues share it between a stored
// operator and the privately mutable copy a solve sequence owns.
type Rect struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int
	vals       []float64

	// part caches the nnz-balanced row partition for MulVecPool.
	part atomic.Pointer[rowPartition]
	// tr caches the explicit transpose for MulVecT/MulVecTPool.
	tr atomic.Pointer[Rect]
}

// NewRect builds a rectangular CSR matrix from raw arrays, used without
// copying. rowPtr must have length rows+1, colIdx/vals length
// rowPtr[rows], and every column index must lie in [0, cols). Rows are
// sorted by column during construction.
func NewRect(rows, cols int, rowPtr, colIdx []int, vals []float64) *Rect {
	if rows <= 0 || cols <= 0 {
		panic("sparse: NewRect requires rows > 0 and cols > 0")
	}
	if len(rowPtr) != rows+1 {
		panic(fmt.Sprintf("sparse: rowPtr length %d, want %d", len(rowPtr), rows+1))
	}
	if len(colIdx) != rowPtr[rows] || len(vals) != rowPtr[rows] {
		panic("sparse: colIdx/vals length disagrees with rowPtr")
	}
	for _, j := range colIdx {
		if j < 0 || j >= cols {
			panic(fmt.Sprintf("sparse: column index %d out of range for cols=%d", j, cols))
		}
	}
	m := &Rect{rows: rows, cols: cols, rowPtr: rowPtr, colIdx: colIdx, vals: vals}
	for i := 0; i < rows; i++ {
		lo, hi := rowPtr[i], rowPtr[i+1]
		sort.Sort(rowView{cols: colIdx[lo:hi], vals: vals[lo:hi]})
	}
	return m
}

// RectFromDense builds a Rect from a row-major rows×cols dense array,
// dropping exact zeros. Convenient for the small dense Jacobians of
// registration problems (m×6 point-to-plane ICP blocks).
func RectFromDense(rows, cols int, data []float64) *Rect {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("sparse: RectFromDense data length %d, want %d", len(data), rows*cols))
	}
	rowPtr := make([]int, rows+1)
	var colIdx []int
	var vals []float64
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if v := data[i*cols+j]; v != 0 {
				colIdx = append(colIdx, j)
				vals = append(vals, v)
			}
		}
		rowPtr[i+1] = len(vals)
	}
	return NewRect(rows, cols, rowPtr, colIdx, vals)
}

// Dim returns the row count (see Shaped).
func (m *Rect) Dim() int { return m.rows }

// Rows returns the number of rows.
func (m *Rect) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Rect) Cols() int { return m.cols }

// NNZ returns the number of stored nonzeros.
func (m *Rect) NNZ() int { return len(m.vals) }

// MaxRowNonzeros returns the maximum number of stored entries in any row.
func (m *Rect) MaxRowNonzeros() int {
	maxNZ := 0
	for i := 0; i < m.rows; i++ {
		if nz := m.rowPtr[i+1] - m.rowPtr[i]; nz > maxNZ {
			maxNZ = nz
		}
	}
	return maxNZ
}

// At returns A[i,j] (zero if the entry is not stored).
func (m *Rect) At(i, j int) float64 {
	for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
		if m.colIdx[p] == j {
			return m.vals[p]
		}
	}
	return 0
}

func (m *Rect) checkMul(dst, x []float64) {
	if len(dst) != m.rows || len(x) != m.cols {
		panic(fmt.Sprintf("sparse: Rect.MulVec dimension mismatch: A is %dx%d, dst %d, x %d",
			m.rows, m.cols, len(dst), len(x)))
	}
}

// MulVec computes dst = A*x (dst length rows, x length cols).
func (m *Rect) MulVec(dst, x []float64) {
	m.checkMul(dst, x)
	for i := 0; i < m.rows; i++ {
		var s float64
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			s += m.vals[p] * x[m.colIdx[p]]
		}
		dst[i] = s
	}
}

// MulVecPool computes dst = A*x over the pool using an nnz-balanced row
// partition, bitwise identical to MulVec (see CSR.MulVecPool).
func (m *Rect) MulVecPool(pool *Pool, dst, x []float64) {
	m.checkMul(dst, x)
	if pool == nil || pool.Workers() < 2 || len(m.vals) < pool.SpMVCutoff() {
		m.MulVec(dst, x)
		return
	}
	bounds := m.rowBounds(pool.Workers())
	if !pool.CSRMulVec(bounds, m.rowPtr, m.colIdx, m.vals, dst, x) {
		m.MulVec(dst, x)
	}
}

// RowPartition returns (and caches) the nnz-balanced row chunk
// boundaries parallel products use — the same contract as
// CSR.RowPartition, so servers can pre-warm either shape on upload.
func (m *Rect) RowPartition(parts int) []int { return m.rowBounds(parts) }

func (m *Rect) rowBounds(parts int) []int {
	if parts < 1 {
		parts = 1
	}
	if parts > m.rows {
		parts = m.rows
	}
	if cached := m.part.Load(); cached != nil && cached.parts == parts {
		return cached.bounds
	}
	bounds := nnzBalancedBounds(m.rowPtr, parts)
	m.part.Store(&rowPartition{parts: parts, bounds: bounds})
	return bounds
}

// transpose returns the cached explicit transpose, building it on first
// use.
func (m *Rect) transpose() *Rect {
	if t := m.tr.Load(); t != nil {
		return t
	}
	tPtr, tIdx, tVals := transposeArrays(m.rows, m.cols, m.rowPtr, m.colIdx, m.vals)
	t := &Rect{rows: m.cols, cols: m.rows, rowPtr: tPtr, colIdx: tIdx, vals: tVals}
	m.tr.Store(t)
	return t
}

// MulVecT computes dst = Aᵀ*x (dst length cols, x length rows).
func (m *Rect) MulVecT(dst, x []float64) {
	m.transpose().MulVec(dst, x)
}

// MulVecTPool computes dst = Aᵀ*x over the pool, a race-free row-wise
// gather on the cached explicit transpose.
func (m *Rect) MulVecTPool(pool *Pool, dst, x []float64) {
	m.transpose().MulVecPool(pool, dst, x)
}

// Values returns the stored nonzero values in row-major CSR order. The
// slice is the matrix's backing storage: treat it as read-only and use
// SetValues or Scale to mutate.
func (m *Rect) Values() []float64 { return m.vals }

// SetValues replaces the stored values in place (structure unchanged);
// vals must have length NNZ. Cached derived state (the explicit
// transpose) is invalidated.
func (m *Rect) SetValues(vals []float64) {
	if len(vals) != len(m.vals) {
		panic(fmt.Sprintf("sparse: SetValues length %d, want %d", len(vals), len(m.vals)))
	}
	copy(m.vals, vals)
	m.tr.Store(nil)
}

// Scale multiplies every stored value by s in place, invalidating the
// cached transpose.
func (m *Rect) Scale(s float64) {
	for i := range m.vals {
		m.vals[i] *= s
	}
	m.tr.Store(nil)
}

// CloneValues returns a matrix sharing this one's immutable structure
// (rowPtr/colIdx and the cached row partition) but owning a private copy
// of the values, so the clone can be mutated (SetValues, Scale) without
// affecting the original — the isolation a solve sequence needs over a
// shared stored operator.
func (m *Rect) CloneValues() *Rect {
	vals := make([]float64, len(m.vals))
	copy(vals, m.vals)
	c := &Rect{rows: m.rows, cols: m.cols, rowPtr: m.rowPtr, colIdx: m.colIdx, vals: vals}
	if p := m.part.Load(); p != nil {
		c.part.Store(p)
	}
	return c
}

// ToDense expands the matrix into a row-major dense array (tests only).
func (m *Rect) ToDense() []float64 {
	data := make([]float64, m.rows*m.cols)
	for i := 0; i < m.rows; i++ {
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			data[i*m.cols+m.colIdx[p]] = m.vals[p]
		}
	}
	return data
}

var (
	_ Matrix          = (*Rect)(nil)
	_ Sparse          = (*Rect)(nil)
	_ Shaped          = (*Rect)(nil)
	_ PoolMulVec      = (*Rect)(nil)
	_ TransposeMulVec = (*Rect)(nil)
	_ PoolMulVecT     = (*Rect)(nil)
	_ TransposeMulVec = (*CSR)(nil)
	_ PoolMulVecT     = (*CSR)(nil)
	_ TransposeMulVec = (*Dense)(nil)
)
