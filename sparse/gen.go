package sparse

import (
	"fmt"
	"math"

	"vrcg/internal/vec"
)

// Poisson1D returns the m x m tridiagonal Laplacian [-1 2 -1] in CSR form.
// Its eigenvalues are 2 - 2*cos(k*pi/(m+1)), so it is SPD with condition
// number growing like m^2 — a convenient ill-conditioned family for the
// stability experiments.
func Poisson1D(m int) *CSR {
	coo := NewCOO(m)
	for i := 0; i < m; i++ {
		coo.Add(i, i, 2)
		if i > 0 {
			coo.Add(i, i-1, -1)
		}
		if i < m-1 {
			coo.Add(i, i+1, -1)
		}
	}
	return coo.ToCSR()
}

// Poisson2D returns the five-point Laplacian on an m x m grid in CSR form
// (order m^2).
func Poisson2D(m int) *CSR {
	return NewStencil(Stencil2D5, m).ToCSR()
}

// Poisson3D returns the seven-point Laplacian on an m^3 grid in CSR form
// (order m^3).
func Poisson3D(m int) *CSR {
	return NewStencil(Stencil3D7, m).ToCSR()
}

// TridiagToeplitz returns the symmetric Toeplitz tridiagonal matrix with
// the given diagonal and off-diagonal values. SPD requires diag > 2*|off|.
func TridiagToeplitz(n int, diag, off float64) *CSR {
	coo := NewCOO(n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, diag)
		if i > 0 {
			coo.Add(i, i-1, off)
		}
		if i < n-1 {
			coo.Add(i, i+1, off)
		}
	}
	return coo.ToCSR()
}

// RandomSPD returns a random symmetric strictly diagonally dominant (hence
// SPD) matrix of order n with approximately nnzPerRow off-diagonal entries
// per row, generated deterministically from seed.
func RandomSPD(n, nnzPerRow int, seed uint64) *CSR {
	if nnzPerRow < 0 {
		panic("sparse: RandomSPD requires nnzPerRow >= 0")
	}
	if nnzPerRow >= n {
		nnzPerRow = n - 1
	}
	coo := NewCOO(n)
	state := seed
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	uniform := func() float64 { return float64(next()>>11) / float64(1<<53) }

	rowAbs := make([]float64, n)
	for i := 0; i < n; i++ {
		for k := 0; k < nnzPerRow/2+1; k++ {
			j := int(next() % uint64(n))
			if j == i {
				continue
			}
			v := uniform() - 0.5
			coo.AddSym(i, j, v)
			rowAbs[i] += math.Abs(v)
			rowAbs[j] += math.Abs(v)
		}
	}
	// Strict dominance margin keeps the matrix well away from singular.
	for i := 0; i < n; i++ {
		coo.Add(i, i, rowAbs[i]+1+uniform())
	}
	return coo.ToCSR()
}

// GraphLaplacian builds the Laplacian L = D - W of an undirected weighted
// graph given as edge list, shifted by +shift*I to make it strictly SPD
// (the pure Laplacian is only semidefinite). Edges are (u, v, weight)
// triples with u != v and weight > 0.
type Edge struct {
	U, V int
	W    float64
}

// GraphLaplacian assembles the shifted graph Laplacian in CSR form.
func GraphLaplacian(n int, edges []Edge, shift float64) *CSR {
	if shift <= 0 {
		panic("sparse: GraphLaplacian needs shift > 0 for positive definiteness")
	}
	coo := NewCOO(n)
	deg := make([]float64, n)
	for _, e := range edges {
		if e.U == e.V {
			panic(fmt.Sprintf("sparse: self-loop on vertex %d", e.U))
		}
		if e.W <= 0 {
			panic(fmt.Sprintf("sparse: non-positive edge weight %v", e.W))
		}
		coo.Add(e.U, e.V, -e.W)
		coo.Add(e.V, e.U, -e.W)
		deg[e.U] += e.W
		deg[e.V] += e.W
	}
	for i := 0; i < n; i++ {
		coo.Add(i, i, deg[i]+shift)
	}
	return coo.ToCSR()
}

// RingLaplacian is a convenience generator: the shifted Laplacian of an
// n-cycle, giving a circulant SPD matrix with known spectrum
// shift + 2 - 2*cos(2*pi*k/n).
func RingLaplacian(n int, shift float64) *CSR {
	edges := make([]Edge, n)
	for i := 0; i < n; i++ {
		edges[i] = Edge{U: i, V: (i + 1) % n, W: 1}
	}
	return GraphLaplacian(n, edges, shift)
}

// DiagonalMatrix returns a diagonal matrix with the given entries, used to
// construct problems with a prescribed spectrum (and hence prescribed CG
// convergence behaviour).
func DiagonalMatrix(d []float64) *CSR {
	coo := NewCOO(len(d))
	for i, v := range d {
		coo.Add(i, i, v)
	}
	return coo.ToCSR()
}

// PrescribedSpectrum returns a diagonal SPD matrix whose eigenvalues are
// geometrically spaced in [1, kappa]; CG's worst-case convergence rate is
// governed by sqrt(kappa), making this the canonical conditioning study.
func PrescribedSpectrum(n int, kappa float64) *CSR {
	if kappa < 1 {
		panic("sparse: PrescribedSpectrum requires kappa >= 1")
	}
	d := vec.New(n)
	if n == 1 {
		d[0] = kappa
	} else {
		ratio := math.Pow(kappa, 1/float64(n-1))
		x := 1.0
		for i := 0; i < n; i++ {
			d[i] = x
			x *= ratio
		}
	}
	return DiagonalMatrix(d)
}

// PowerApply computes dst[i] = A^i * x for i = 0..k, returning k+1 freshly
// allocated vectors. The look-ahead algorithm needs the Krylov sequence
// {A^i r, A^i p}; this helper is the reference implementation tests
// validate the recurrence-based version against.
func PowerApply(a Matrix, x []float64, k int) [][]float64 {
	if k < 0 {
		panic("sparse: PowerApply requires k >= 0")
	}
	out := make([][]float64, k+1)
	out[0] = vec.Clone(x)
	for i := 1; i <= k; i++ {
		out[i] = vec.New(a.Dim())
		a.MulVec(out[i], out[i-1])
	}
	return out
}
