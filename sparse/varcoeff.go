package sparse

import "fmt"

// Variable-coefficient elliptic operators: the "large sparse linear
// systems occurring in practice" of the paper's introduction are
// discretized -div(c(x) grad u) problems; constant-coefficient Poisson
// is only their best-behaved member. These generators produce the
// harder members: jumping coefficients and anisotropy, both of which
// raise the condition number and stress the preconditioners and the
// look-ahead recurrences.

// VarCoeffPoisson2D discretizes -div(c(x,y) grad u) = f on the unit
// square with an m x m grid and homogeneous Dirichlet boundaries, using
// the standard five-point flux form with harmonic averaging of the cell
// coefficient at the faces. coef is evaluated at cell centers
// ((i+0.5)/m, (j+0.5)/m) and must be strictly positive.
func VarCoeffPoisson2D(m int, coef func(x, y float64) float64) (*CSR, error) {
	if m < 1 {
		return nil, fmt.Errorf("sparse: VarCoeffPoisson2D needs m >= 1")
	}
	c := make([]float64, m*m)
	for j := 0; j < m; j++ {
		for i := 0; i < m; i++ {
			v := coef((float64(i)+0.5)/float64(m), (float64(j)+0.5)/float64(m))
			if v <= 0 {
				return nil, fmt.Errorf("sparse: coefficient %g at cell (%d,%d) not positive", v, i, j)
			}
			c[j*m+i] = v
		}
	}
	harmonic := func(a, b float64) float64 { return 2 * a * b / (a + b) }

	coo := NewCOO(m * m)
	for j := 0; j < m; j++ {
		for i := 0; i < m; i++ {
			idx := j*m + i
			diag := 0.0
			// Face coefficients: boundary faces couple to the Dirichlet
			// wall (contributing to the diagonal only).
			west := c[idx]
			if i > 0 {
				west = harmonic(c[idx], c[idx-1])
				coo.Add(idx, idx-1, -west)
			}
			east := c[idx]
			if i < m-1 {
				east = harmonic(c[idx], c[idx+1])
				coo.Add(idx, idx+1, -east)
			}
			south := c[idx]
			if j > 0 {
				south = harmonic(c[idx], c[idx-m])
				coo.Add(idx, idx-m, -south)
			}
			north := c[idx]
			if j < m-1 {
				north = harmonic(c[idx], c[idx+m])
				coo.Add(idx, idx+m, -north)
			}
			diag = west + east + south + north
			coo.Add(idx, idx, diag)
		}
	}
	return coo.ToCSR(), nil
}

// AnisotropicPoisson2D discretizes -(eps*u_xx + u_yy) on an m x m grid:
// the classic anisotropic model problem whose condition worsens as eps
// departs from 1. eps must be positive.
func AnisotropicPoisson2D(m int, eps float64) (*CSR, error) {
	if m < 1 {
		return nil, fmt.Errorf("sparse: AnisotropicPoisson2D needs m >= 1")
	}
	if eps <= 0 {
		return nil, fmt.Errorf("sparse: anisotropy %g must be positive", eps)
	}
	coo := NewCOO(m * m)
	for j := 0; j < m; j++ {
		for i := 0; i < m; i++ {
			idx := j*m + i
			coo.Add(idx, idx, 2*eps+2)
			if i > 0 {
				coo.Add(idx, idx-1, -eps)
			}
			if i < m-1 {
				coo.Add(idx, idx+1, -eps)
			}
			if j > 0 {
				coo.Add(idx, idx-m, -1)
			}
			if j < m-1 {
				coo.Add(idx, idx+m, -1)
			}
		}
	}
	return coo.ToCSR(), nil
}

// JumpCoefficient returns a coefficient function with value 1 on the
// unit square except for a centered inclusion of the given contrast —
// the standard discontinuous-coefficient stress test.
func JumpCoefficient(contrast float64) func(x, y float64) float64 {
	return func(x, y float64) float64 {
		if x > 0.25 && x < 0.75 && y > 0.25 && y < 0.75 {
			return contrast
		}
		return 1
	}
}
