package sparse

import (
	"testing"
	"testing/quick"

	"vrcg/internal/vec"
)

// shuffledPoisson returns a 2D Poisson matrix with rows/columns randomly
// permuted, destroying its natural banded structure.
func shuffledPoisson(side int, seed uint64) (*CSR, []int) {
	a := Poisson2D(side)
	n := a.Dim()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	s := seed
	next := func() uint64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := n - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	shuffled, err := PermuteSymmetric(a, perm)
	if err != nil {
		panic(err)
	}
	return shuffled, perm
}

func TestRCMReducesBandwidth(t *testing.T) {
	shuffled, _ := shuffledPoisson(10, 7)
	before := Bandwidth(shuffled)
	perm := RCMOrder(shuffled)
	reordered, err := PermuteSymmetric(shuffled, perm)
	if err != nil {
		t.Fatal(err)
	}
	after := Bandwidth(reordered)
	if after >= before/2 {
		t.Fatalf("RCM did not substantially reduce bandwidth: %d -> %d", before, after)
	}
	// The natural 2D grid ordering has bandwidth ~side; RCM should be in
	// the same ballpark.
	if after > 4*10 {
		t.Fatalf("RCM bandwidth %d too large for a 10x10 grid", after)
	}
}

func TestRCMPermutationIsValid(t *testing.T) {
	a := RandomSPD(40, 5, 3)
	perm := RCMOrder(a)
	if len(perm) != 40 {
		t.Fatalf("permutation length %d", len(perm))
	}
	seen := make([]bool, 40)
	for _, p := range perm {
		if p < 0 || p >= 40 || seen[p] {
			t.Fatalf("invalid permutation: %v", perm)
		}
		seen[p] = true
	}
}

func TestRCMHandlesDisconnected(t *testing.T) {
	// Two disjoint 3-vertex paths.
	coo := NewCOO(6)
	for i := 0; i < 6; i++ {
		coo.Add(i, i, 2)
	}
	coo.AddSym(0, 1, -1)
	coo.AddSym(1, 2, -1)
	coo.AddSym(3, 4, -1)
	coo.AddSym(4, 5, -1)
	a := coo.ToCSR()
	perm := RCMOrder(a)
	seen := map[int]bool{}
	for _, p := range perm {
		seen[p] = true
	}
	if len(seen) != 6 {
		t.Fatalf("disconnected graph not fully ordered: %v", perm)
	}
}

func TestPermuteSymmetricPreservesAction(t *testing.T) {
	a := Poisson2D(6)
	n := a.Dim()
	perm := RCMOrder(a)
	b, err := PermuteSymmetric(a, perm)
	if err != nil {
		t.Fatal(err)
	}
	// B (P x) should equal P (A x) where (Px)[i] = x[perm[i]].
	x := vec.New(n)
	vec.Random(x, 5)
	px, err := PermuteVector(x, perm)
	if err != nil {
		t.Fatal(err)
	}
	bpx := vec.New(n)
	b.MulVec(bpx, px)
	ax := vec.New(n)
	a.MulVec(ax, x)
	pax, err := PermuteVector(ax, perm)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.EqualTol(bpx, pax, 1e-12) {
		t.Fatal("permuted operator does not commute with permutation")
	}
}

func TestPermuteUnpermuteInverse(t *testing.T) {
	x := vec.New(12)
	vec.Random(x, 8)
	perm := RCMOrder(Poisson1D(12))
	px, err := PermuteVector(x, perm)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnpermuteVector(px, perm)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.EqualTol(back, x, 0) {
		t.Fatal("unpermute(permute) != identity")
	}
}

func TestPermuteErrors(t *testing.T) {
	a := Poisson1D(4)
	if _, err := PermuteSymmetric(a, []int{0, 1}); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := PermuteSymmetric(a, []int{0, 0, 1, 2}); err == nil {
		t.Fatal("expected duplicate error")
	}
	if _, err := PermuteSymmetric(a, []int{0, 1, 2, 9}); err == nil {
		t.Fatal("expected range error")
	}
	x := vec.New(4)
	if _, err := PermuteVector(x, []int{0}); err == nil {
		t.Fatal("expected vector length error")
	}
	if _, err := UnpermuteVector(x, []int{0, 1, 2, 9}); err == nil {
		t.Fatal("expected vector range error")
	}
}

func TestBandwidthDiagonalAndTridiag(t *testing.T) {
	if bw := Bandwidth(DiagonalMatrix(vec.NewFrom([]float64{1, 2, 3}))); bw != 0 {
		t.Fatalf("diagonal bandwidth %d", bw)
	}
	if bw := Bandwidth(Poisson1D(10)); bw != 1 {
		t.Fatalf("tridiagonal bandwidth %d", bw)
	}
}

// Property: RCM never increases a solve's correctness — the permuted
// system solves to the same solution (after unpermuting).
func TestPropRCMSolveEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		shuffled, _ := shuffledPoisson(5, seed)
		n := shuffled.Dim()
		xTrue := vec.New(n)
		vec.Random(xTrue, seed+1)
		b := vec.New(n)
		shuffled.MulVec(b, xTrue)

		perm := RCMOrder(shuffled)
		pa, err := PermuteSymmetric(shuffled, perm)
		if err != nil {
			return false
		}
		pb, err := PermuteVector(b, perm)
		if err != nil {
			return false
		}
		// Solve the permuted system with plain CG (simple direct loop).
		x := vec.New(n)
		r := vec.Clone(pb)
		p := vec.Clone(r)
		ap := vec.New(n)
		rr := vec.Dot(r, r)
		for it := 0; it < 10*n && rr > 1e-22; it++ {
			pa.MulVec(ap, p)
			lam := rr / vec.Dot(p, ap)
			vec.Axpy(lam, p, x)
			vec.Axpy(-lam, ap, r)
			rrN := vec.Dot(r, r)
			vec.Xpay(r, rrN/rr, p)
			rr = rrN
		}
		got, err := UnpermuteVector(x, perm)
		if err != nil {
			return false
		}
		return vec.EqualTol(got, xTrue, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
