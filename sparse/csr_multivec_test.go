package sparse

import (
	"runtime"
	"testing"

	"vrcg/internal/vec"
)

// TestMulVecsMatchesMulVecPerColumn: the one-pass multi-vector product
// yields every output column bitwise identical to the single-vector
// MulVec, for column counts exercising the 4-wide groups and the
// remainder path, serially and across worker counts.
func TestMulVecsMatchesMulVecPerColumn(t *testing.T) {
	mats := map[string]*CSR{
		"poisson2d": Poisson2D(17),
		"irregular": irregularCSR(400),
	}
	for name, a := range mats {
		n := a.Dim()
		for _, s := range []int{1, 3, 4, 7} {
			xs := make([][]float64, s)
			want := make([][]float64, s)
			dsts := make([][]float64, s)
			for j := 0; j < s; j++ {
				xs[j] = vec.New(n)
				vec.Random(xs[j], uint64(10*n+j))
				want[j] = vec.New(n)
				a.MulVec(want[j], xs[j])
				dsts[j] = vec.New(n)
			}
			a.MulVecs(dsts, xs)
			for j := 0; j < s; j++ {
				if !vec.Equal(want[j], dsts[j]) {
					t.Fatalf("%s s=%d: MulVecs column %d differs from MulVec", name, s, j)
				}
			}
			for _, w := range []int{1, 2, runtime.GOMAXPROCS(0), n + 5} {
				pool := vec.NewPoolMinChunk(w, 1)
				for j := range dsts {
					vec.Fill(dsts[j], -123)
				}
				a.MulVecsPool(pool, dsts, xs)
				for j := 0; j < s; j++ {
					if !vec.Equal(want[j], dsts[j]) {
						t.Fatalf("%s s=%d workers=%d: MulVecsPool column %d differs from MulVec", name, s, w, j)
					}
				}
				pool.Close()
			}
		}
	}
}

// TestMulVecsPoolZeroAlloc: a warm pooled multi-vector SpMV allocates
// nothing — the block solvers' per-iteration product must stay off the
// heap.
func TestMulVecsPoolZeroAlloc(t *testing.T) {
	a := Poisson2D(64) // n=4096
	pool := vec.NewPoolMinChunk(4, 64)
	defer pool.Close()
	s := 4
	xs := make([][]float64, s)
	dsts := make([][]float64, s)
	for j := 0; j < s; j++ {
		xs[j] = vec.New(a.Dim())
		vec.Random(xs[j], uint64(30+j))
		dsts[j] = vec.New(a.Dim())
	}
	a.MulVecsPool(pool, dsts, xs) // warm partition cache + workers
	if avg := testing.AllocsPerRun(100, func() { a.MulVecsPool(pool, dsts, xs) }); avg != 0 {
		t.Errorf("warm MulVecsPool allocates %v per call, want 0", avg)
	}
}

// TestPooledMulVecsFallsBackPerColumn: operators without a one-pass
// multi-vector product still serve PooledMulVecs via per-column
// products.
func TestPooledMulVecsFallsBackPerColumn(t *testing.T) {
	st := NewStencil(Stencil2D5, 16) // Stencil has MulVecPool but no MulVecsPool
	n := st.Dim()
	xs := make([][]float64, 2)
	want := make([][]float64, 2)
	dsts := make([][]float64, 2)
	for j := range xs {
		xs[j] = vec.New(n)
		vec.Random(xs[j], uint64(50+j))
		want[j] = vec.New(n)
		st.MulVec(want[j], xs[j])
		dsts[j] = vec.New(n)
	}
	PooledMulVecs(st, nil, dsts, xs)
	for j := range dsts {
		if !vec.Equal(want[j], dsts[j]) {
			t.Fatalf("PooledMulVecs fallback column %d differs from MulVec", j)
		}
	}
}
