package sparse

import (
	"math"
	"runtime"
	"testing"

	"vrcg/internal/vec"
)

// skewedCSR builds the pathological row-length distribution for SELL:
// mostly short rows with a heavy row every stride rows, so naive
// ELLPACK-style padding would be enormous and the σ-window sort has
// real work to do.
func skewedCSR(n, stride, heavy int) *CSR {
	coo := NewCOO(n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 4)
		if i+1 < n {
			coo.Add(i, i+1, -1)
		}
		if i%stride == 0 {
			for k := 1; k <= heavy; k++ {
				coo.Add(i, (i+k*7)%n, 1/float64(k+1))
			}
		}
	}
	return coo.ToCSR()
}

func sellParityMatrices() map[string]*CSR {
	return map[string]*CSR{
		"random":    RandomSPD(701, 6, 42),
		"banded":    Poisson2D(33), // n=1089, regular 5-point rows
		"skewed":    skewedCSR(1500, 97, 60),
		"arrow":     irregularCSR(513),
		"tiny":      TridiagToeplitz(5, 4, -1),
		"tridiag1d": Poisson1D(2049),
	}
}

// TestSELLParityCSR is the conversion-correctness satellite: for
// random, banded, and pathological skewed-row-length matrices, at
// several sorting windows, SELL.MulVec must equal CSR.MulVec bitwise
// (each row keeps its CSR accumulation order and padding adds exact
// +0.0 terms).
func TestSELLParityCSR(t *testing.T) {
	for name, a := range sellParityMatrices() {
		n := a.Dim()
		x := vec.New(n)
		vec.Random(x, uint64(7*n+1))
		want := vec.New(n)
		a.MulVec(want, x)
		for _, sigma := range []int{0, SellC, 32, 1 << 20} {
			s := NewSELL(a, sigma)
			got := vec.New(n)
			vec.Fill(got, math.NaN())
			s.MulVec(got, x)
			if !vec.Equal(want, got) {
				t.Fatalf("%s n=%d sigma=%d: SELL.MulVec differs from CSR bitwise", name, n, sigma)
			}
			if s.NNZ() != a.NNZ() {
				t.Fatalf("%s sigma=%d: NNZ = %d, CSR %d", name, sigma, s.NNZ(), a.NNZ())
			}
			if s.MaxRowNonzeros() != a.MaxRowNonzeros() {
				t.Fatalf("%s sigma=%d: MaxRowNonzeros = %d, CSR %d",
					name, sigma, s.MaxRowNonzeros(), a.MaxRowNonzeros())
			}
			if pr := s.PaddingRatio(); pr < 0 || pr >= 1 {
				t.Fatalf("%s sigma=%d: PaddingRatio = %v out of [0,1)", name, sigma, pr)
			}
		}
	}
}

// TestSELLSortBoundsPadding: on the skewed matrix a real sorting window
// must shrink padding dramatically versus no sorting (σ = C leaves
// every heavy row grouped with its short neighbors).
func TestSELLSortBoundsPadding(t *testing.T) {
	a := skewedCSR(1500, 97, 60)
	unsorted := NewSELL(a, SellC)
	sorted := NewSELL(a, 512)
	if sorted.PaddingRatio() >= unsorted.PaddingRatio() {
		t.Fatalf("σ-sorting did not reduce padding: σ=512 ratio %v, σ=C ratio %v",
			sorted.PaddingRatio(), unsorted.PaddingRatio())
	}
	if sorted.PaddingRatio() > 0.25 {
		t.Fatalf("sorted padding ratio %v, want ≤ 0.25 on this distribution", sorted.PaddingRatio())
	}
}

// TestSELLAt spot-checks At against CSR.At, including stored zeros'
// positions and padding slots.
func TestSELLAt(t *testing.T) {
	a := skewedCSR(300, 41, 20)
	s := a.ToSELL()
	for i := 0; i < a.Dim(); i += 7 {
		for j := 0; j < a.Dim(); j += 11 {
			if got, want := s.At(i, j), a.At(i, j); got != want {
				t.Fatalf("At(%d,%d) = %v, CSR %v", i, j, got, want)
			}
		}
	}
}

// TestSELLMulVecPoolBitwise: the pooled SELL product equals the serial
// one bitwise across worker counts — chunk ranges write disjoint rows
// through the permutation, and per-row accumulation order is fixed.
func TestSELLMulVecPoolBitwise(t *testing.T) {
	for name, a := range sellParityMatrices() {
		n := a.Dim()
		s := a.ToSELL()
		x := vec.New(n)
		vec.Random(x, uint64(11*n+5))
		want := vec.New(n)
		s.MulVec(want, x)
		for _, w := range []int{1, 2, runtime.GOMAXPROCS(0), n + 5} {
			pool := vec.NewPoolMinChunk(w, 1)
			got := vec.New(n)
			vec.Fill(got, -123)
			s.MulVecPool(pool, got, x)
			if !vec.Equal(want, got) {
				t.Fatalf("%s n=%d workers=%d: SELL.MulVecPool differs from MulVec", name, n, w)
			}
			pool.Close()
		}
	}
}

// TestSELLMulVecPoolZeroAlloc: a warm pooled SELL product allocates
// nothing (run under -race in CI).
func TestSELLMulVecPoolZeroAlloc(t *testing.T) {
	s := Poisson2D(64).ToSELL() // n=4096
	pool := vec.NewPoolMinChunk(4, 64)
	defer pool.Close()
	x := vec.New(s.Dim())
	vec.Random(x, 23)
	dst := vec.New(s.Dim())
	s.MulVecPool(pool, dst, x) // warm partition cache + workers
	if avg := testing.AllocsPerRun(100, func() { s.MulVecPool(pool, dst, x) }); avg != 0 {
		t.Errorf("warm SELL.MulVecPool allocates %v per call, want 0", avg)
	}
}

// TestSELLChunkPartition: boundaries cover all chunks, strictly
// increase, and cache per part count.
func TestSELLChunkPartition(t *testing.T) {
	s := skewedCSR(2000, 53, 40).ToSELL()
	nchunks := (s.Dim() + SellC - 1) / SellC
	for _, parts := range []int{1, 2, 3, 8, 64} {
		b := s.ChunkPartition(parts)
		if b[0] != 0 || b[len(b)-1] != nchunks {
			t.Fatalf("parts=%d: bounds %v do not cover [0,%d]", parts, b, nchunks)
		}
		for i := 1; i < len(b); i++ {
			if b[i] <= b[i-1] {
				t.Fatalf("parts=%d: bounds %v not strictly increasing", parts, b)
			}
		}
		if len(b)-1 > parts {
			t.Fatalf("parts=%d: %d chunks produced", parts, len(b)-1)
		}
	}
}

// TestTuneMulVec pins the auto-selection policy: small and non-CSR
// operators pass through; a large regular CSR converts to SELL exactly
// once (cached); a padding-hostile matrix stays CSR.
func TestTuneMulVec(t *testing.T) {
	small := Poisson2D(20) // n=400 < sellMinDim
	if got := TuneMulVec(small); got != Matrix(small) {
		t.Fatalf("TuneMulVec converted a matrix below the size floor: %T", got)
	}

	d := NewDense(3)
	if got := TuneMulVec(d); got != Matrix(d) {
		t.Fatalf("TuneMulVec changed a non-CSR operator: %T", got)
	}

	big := Poisson2D(64) // n=4096, near-uniform rows: should convert
	t1 := TuneMulVec(big)
	s, ok := t1.(*SELL)
	if !ok {
		t.Fatalf("TuneMulVec(poisson 4096) = %T, want *SELL", t1)
	}
	if t2 := TuneMulVec(big); t2 != Matrix(s) {
		t.Fatal("TuneMulVec rebuilt the SELL instead of returning the cached one")
	}
	x := vec.New(big.Dim())
	vec.Random(x, 31)
	want, got := vec.New(big.Dim()), vec.New(big.Dim())
	big.MulVec(want, x)
	s.MulVec(got, x)
	if !vec.Equal(want, got) {
		t.Fatal("tuned operator differs from CSR bitwise")
	}

	// One enormous row per window on an otherwise-diagonal matrix: even
	// after sorting, padding blows past the threshold and CSR stays.
	hostile := skewedCSR(4096, 256, 300)
	if ratio := hostile.ToSELL().PaddingRatio(); ratio <= sellMaxPadding {
		t.Fatalf("test matrix not hostile enough: padding ratio %v", ratio)
	}
	if got := TuneMulVec(hostile); got != Matrix(hostile) {
		t.Fatalf("TuneMulVec converted a padding-hostile matrix: %T", got)
	}
	if got := TuneMulVec(hostile); got != Matrix(hostile) {
		t.Fatal("cached negative decision not honored")
	}
}

// FuzzCSRToSELL drives the CSR→SELL conversion with fuzzed shapes and
// checks the invariants the solver relies on: bitwise MulVec parity
// with CSR, structural counts preserved, and a valid slot permutation.
func FuzzCSRToSELL(f *testing.F) {
	f.Add(uint64(1), uint(8), uint(0), uint(3))
	f.Add(uint64(42), uint(100), uint(4), uint(9))
	f.Add(uint64(7), uint(257), uint(129), uint(1))
	f.Add(uint64(99), uint(33), uint(1<<20), uint(5))
	f.Fuzz(func(t *testing.T, seed uint64, un, usigma, unnzRow uint) {
		n := int(un%1000) + 1
		sigma := int(usigma % (1 << 21))
		nnzRow := int(unnzRow%12) + 1

		// Deterministic pseudo-random sparse matrix from the seed.
		rng := seed | 1
		next := func() uint64 {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return rng
		}
		coo := NewCOO(n)
		for i := 0; i < n; i++ {
			rows := int(next() % uint64(nnzRow))
			for k := 0; k < rows; k++ {
				j := int(next() % uint64(n))
				v := float64(int64(next()))/float64(1<<40) - 0.5
				coo.Add(i, j, v)
			}
		}
		a := coo.ToCSR()
		s := NewSELL(a, sigma)

		if s.Dim() != a.Dim() || s.NNZ() != a.NNZ() || s.MaxRowNonzeros() != a.MaxRowNonzeros() {
			t.Fatalf("structure mismatch: dim %d/%d nnz %d/%d maxrow %d/%d",
				s.Dim(), a.Dim(), s.NNZ(), a.NNZ(), s.MaxRowNonzeros(), a.MaxRowNonzeros())
		}

		// perm must be a bijection between real slots and rows.
		seen := make([]bool, n)
		real := 0
		for _, r := range s.perm {
			if r < 0 {
				continue
			}
			if int(r) >= n || seen[r] {
				t.Fatalf("perm slot maps to invalid or duplicate row %d", r)
			}
			seen[r] = true
			real++
		}
		if real != n {
			t.Fatalf("perm covers %d rows, want %d", real, n)
		}

		x := vec.New(n)
		vec.Random(x, seed+3)
		want, got := vec.New(n), vec.New(n)
		a.MulVec(want, x)
		s.MulVec(got, x)
		if !vec.Equal(want, got) {
			t.Fatal("SELL.MulVec differs from CSR bitwise")
		}
	})
}
