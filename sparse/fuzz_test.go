package sparse

import (
	"bytes"
	"strings"
	"testing"

	"vrcg/internal/vec"
)

// FuzzReadMatrixMarket exercises the Matrix Market parser with arbitrary
// input: it must never panic and, when it accepts input, produce a
// well-formed matrix that survives a write/read round trip.
func FuzzReadMatrixMarket(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 4.5\n2 2 -1.25\n")
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n3 3 3\n1 1 4\n2 1 -1\n3 3 4\n")
	f.Add("%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 2\n")
	f.Add("%%MatrixMarket matrix coordinate integer general\n1 1 1\n1 1 7\n")
	f.Add("")
	f.Add("%%MatrixMarket matrix coordinate real general\n1 1 1\n")
	f.Add("garbage\nmore garbage\n")

	f.Fuzz(func(t *testing.T, input string) {
		a, err := ReadMatrixMarket(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if a.Dim() < 1 {
			t.Fatalf("accepted matrix with dim %d", a.Dim())
		}
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, a, false); err != nil {
			t.Fatalf("write of accepted matrix failed: %v", err)
		}
		back, err := ReadMatrixMarket(&buf)
		if err != nil {
			t.Fatalf("round trip of accepted matrix failed: %v", err)
		}
		if back.Dim() != a.Dim() || back.NNZ() != a.NNZ() {
			t.Fatalf("round trip changed shape: %d/%d -> %d/%d",
				a.Dim(), a.NNZ(), back.Dim(), back.NNZ())
		}
	})
}

// FuzzReadMatrixMarketVector does the same for the array-format reader.
func FuzzReadMatrixMarketVector(f *testing.F) {
	f.Add("%%MatrixMarket matrix array real general\n2 1\n1.5\n-2.5\n")
	f.Add("%%MatrixMarket matrix array real general\n0 1\n")
	f.Add("")
	f.Add("%%MatrixMarket matrix array real general\n3 1\n1\n")

	f.Fuzz(func(t *testing.T, input string) {
		v, err := ReadMatrixMarketVector(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteMatrixMarketVector(&buf, v); err != nil {
			t.Fatalf("write of accepted vector failed: %v", err)
		}
		back, err := ReadMatrixMarketVector(&buf)
		if err != nil {
			t.Fatalf("round trip of accepted vector failed: %v", err)
		}
		if !vec.EqualTol(back, v, 0) {
			t.Fatal("round trip changed the vector")
		}
	})
}
