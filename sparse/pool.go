package sparse

import (
	"vrcg/internal/vec"
)

// Pool is the shared worker-pool execution engine the parallel kernels
// run on: a fixed set of persistent workers executing chunked
// data-parallel jobs with zero steady-state allocations. It is exported
// here (as an alias of the internal engine type) so external callers
// can construct pools, hand them to the pool-aware operators in this
// package, and to solve.WithPool.
//
// A single Pool serializes its kernels behind an internal mutex, which
// is the natural contract for one iterative solve; independent
// concurrent solves should each own a Pool (they are cheap until their
// first dispatch spawns the workers).
type Pool = vec.Pool

// DefaultPool is a process-wide pool using all available CPUs.
var DefaultPool = vec.DefaultPool

// DefaultMinChunk is the smallest per-worker slice length worth handing
// to a parallel worker; below it kernels run serially on the calling
// goroutine.
const DefaultMinChunk = vec.DefaultMinChunk

// NewPool returns a pool with the given number of workers (at least 1;
// 1 means every kernel runs serially and no goroutines are spawned).
func NewPool(workers int) *Pool { return vec.NewPool(workers) }

// NewPoolMinChunk returns a pool with an explicit minimum per-worker
// chunk length (construction-time alternative to Pool.SetMinChunk).
func NewPoolMinChunk(workers, minChunk int) *Pool { return vec.NewPoolMinChunk(workers, minChunk) }
