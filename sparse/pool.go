package sparse

import (
	"vrcg/internal/vec"
)

// Pool is the shared worker-pool execution engine the parallel kernels
// run on: a fixed set of persistent workers executing chunked
// data-parallel jobs with zero steady-state allocations. It is exported
// here (as an alias of the internal engine type) so external callers
// can construct pools, hand them to the pool-aware operators in this
// package, and to solve.WithPool.
//
// A single Pool serializes its kernels behind an internal mutex, which
// is the natural contract for one iterative solve; independent
// concurrent solves should each own a Pool (they are cheap until their
// first dispatch spawns the workers).
type Pool = vec.Pool

// DefaultPool is a process-wide pool using all available CPUs.
var DefaultPool = vec.DefaultPool

// DefaultMinChunk is the default granularity floor: the smallest
// per-worker slice length a parallel dispatch will plan. Whether a call
// parallelizes at all is decided by per-opcode cutoffs (conservative
// defaults, replaced by measured crossovers when Pool.Calibrate is
// called once at startup); below its opcode's cutoff a kernel runs
// serially on the calling goroutine.
const DefaultMinChunk = vec.DefaultMinChunk

// NewPool returns a pool with the given number of workers (at least 1;
// 1 means every kernel runs serially and no goroutines are spawned).
// Call Calibrate on the returned pool once at process startup to
// replace the conservative default parallel cutoffs with crossovers
// measured on the actual machine.
func NewPool(workers int) *Pool { return vec.NewPool(workers) }

// NewPoolMinChunk returns a pool with an explicit per-worker chunk
// granularity floor (construction-time alternative to
// Pool.SetMinChunk). Lowering it below DefaultMinChunk also rebases the
// per-opcode parallel cutoffs, which is how tests force small inputs
// onto the parallel path.
func NewPoolMinChunk(workers, minChunk int) *Pool { return vec.NewPoolMinChunk(workers, minChunk) }
