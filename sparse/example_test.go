package sparse_test

import (
	"fmt"
	"strings"

	"vrcg/sparse"
)

// ExamplePoisson2D builds the model problem and inspects its structure.
func ExamplePoisson2D() {
	a := sparse.Poisson2D(4) // 4x4 grid, 16 unknowns
	fmt.Printf("n=%d nnz=%d d=%d symmetric=%v\n",
		a.Dim(), a.NNZ(), a.MaxRowNonzeros(), a.IsSymmetric(0))
	// Output: n=16 nnz=64 d=5 symmetric=true
}

// ExampleReadMatrixMarket parses a small coordinate-format matrix.
func ExampleReadMatrixMarket() {
	src := `%%MatrixMarket matrix coordinate real symmetric
2 2 3
1 1 2
2 1 -1
2 2 2
`
	a, err := sparse.ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("n=%d a01=%v a10=%v\n", a.Dim(), a.At(0, 1), a.At(1, 0))
	// Output: n=2 a01=-1 a10=-1
}

// ExampleRCMOrder reduces the bandwidth of a shuffled banded matrix.
func ExampleRCMOrder() {
	a := sparse.Poisson1D(8) // tridiagonal: bandwidth 1
	perm := sparse.RCMOrder(a)
	b, _ := sparse.PermuteSymmetric(a, perm)
	fmt.Printf("bandwidth before=%d after-RCM=%d\n", sparse.Bandwidth(a), sparse.Bandwidth(b))
	// Output: bandwidth before=1 after-RCM=1
}

// ExamplePowerApply builds the Krylov power sequence the look-ahead
// algorithm's base inner products are computed from.
func ExamplePowerApply() {
	a := sparse.DiagonalMatrix([]float64{1, 2})
	x := []float64{1, 1}
	pows := sparse.PowerApply(a, x, 2)
	fmt.Printf("A^0 x = %v, A^1 x = %v, A^2 x = %v\n", pows[0], pows[1], pows[2])
	// Output: A^0 x = [1 1], A^1 x = [1 2], A^2 x = [1 4]
}
