package sparse

import (
	"testing"

	"vrcg/internal/vec"
)

func TestVarCoeffReducesToPoissonForUnitCoef(t *testing.T) {
	m := 6
	a, err := VarCoeffPoisson2D(m, func(x, y float64) float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	ref := Poisson2D(m)
	x := vec.New(m * m)
	vec.Random(x, 1)
	y1 := vec.New(m * m)
	y2 := vec.New(m * m)
	a.MulVec(y1, x)
	ref.MulVec(y2, x)
	if !vec.EqualTol(y1, y2, 1e-12) {
		t.Fatal("unit-coefficient operator differs from Poisson2D")
	}
}

func TestVarCoeffSPDProperties(t *testing.T) {
	a, err := VarCoeffPoisson2D(8, JumpCoefficient(1e4))
	if err != nil {
		t.Fatal(err)
	}
	if !a.IsSymmetric(1e-9) {
		t.Fatal("variable-coefficient operator not symmetric")
	}
	if !a.IsDiagonallyDominant() {
		t.Fatal("flux-form operator should be diagonally dominant")
	}
	y := vec.New(a.Dim())
	for trial := 0; trial < 5; trial++ {
		x := vec.New(a.Dim())
		vec.Random(x, uint64(trial+1))
		a.MulVec(y, x)
		if q := vec.Dot(x, y); q <= 0 {
			t.Fatalf("quadratic form non-positive: %v", q)
		}
	}
}

func TestVarCoeffJumpRaisesCondition(t *testing.T) {
	smooth, err := VarCoeffPoisson2D(10, func(x, y float64) float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	jumpy, err := VarCoeffPoisson2D(10, JumpCoefficient(1e3))
	if err != nil {
		t.Fatal(err)
	}
	ks, err := ConditionEstimate(smooth, 60, 2)
	if err != nil {
		t.Fatal(err)
	}
	kj, err := ConditionEstimate(jumpy, 60, 2)
	if err != nil {
		t.Fatal(err)
	}
	if kj <= ks {
		t.Fatalf("jump contrast should raise condition: %g vs %g", kj, ks)
	}
}

func TestVarCoeffErrors(t *testing.T) {
	if _, err := VarCoeffPoisson2D(0, func(x, y float64) float64 { return 1 }); err == nil {
		t.Fatal("expected m error")
	}
	if _, err := VarCoeffPoisson2D(4, func(x, y float64) float64 { return -1 }); err == nil {
		t.Fatal("expected coefficient error")
	}
}

func TestAnisotropicPoisson(t *testing.T) {
	// eps = 1 reduces to the isotropic Laplacian.
	iso, err := AnisotropicPoisson2D(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	ref := Poisson2D(5)
	x := vec.New(25)
	vec.Random(x, 3)
	y1 := vec.New(25)
	y2 := vec.New(25)
	iso.MulVec(y1, x)
	ref.MulVec(y2, x)
	if !vec.EqualTol(y1, y2, 1e-12) {
		t.Fatal("eps=1 anisotropic operator differs from Poisson2D")
	}

	// The 5-point anisotropic operator's eigenvalues factor as
	// eps*mu_p + mu_q with mu the 1D Laplacian eigenvalues, so its
	// condition number is INDEPENDENT of eps — anisotropy famously hurts
	// multigrid smoothing, not CG conditioning. Verify that documented
	// fact (eps enters only as a direction weighting).
	hard, err := AnisotropicPoisson2D(10, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	kIso, err := ConditionEstimate(Poisson2D(10), 80, 4)
	if err != nil {
		t.Fatal(err)
	}
	kHard, err := ConditionEstimate(hard, 80, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rel := (kHard - kIso) / kIso; rel > 0.15 || rel < -0.15 {
		t.Fatalf("anisotropic condition should match isotropic: %g vs %g", kHard, kIso)
	}
	// The x-coupling carries the eps weight.
	if hard.At(1*10+5, 1*10+4) != -1e-3 || hard.At(1*10+5, 0*10+5) != -1 {
		t.Fatalf("anisotropic couplings wrong: %v, %v",
			hard.At(1*10+5, 1*10+4), hard.At(1*10+5, 0*10+5))
	}
}

func TestAnisotropicErrors(t *testing.T) {
	if _, err := AnisotropicPoisson2D(0, 1); err == nil {
		t.Fatal("expected m error")
	}
	if _, err := AnisotropicPoisson2D(4, 0); err == nil {
		t.Fatal("expected eps error")
	}
}

func TestJumpCoefficient(t *testing.T) {
	c := JumpCoefficient(100)
	if c(0.5, 0.5) != 100 {
		t.Fatal("inclusion value wrong")
	}
	if c(0.1, 0.1) != 1 {
		t.Fatal("background value wrong")
	}
}
