package sparse

import (
	"runtime"
	"testing"

	"vrcg/internal/vec"
)

// TestDIAMulVecPoolMatchesSerial: the pooled DIA product must match the
// serial one bitwise across worker counts (each row accumulates its
// diagonals in the same order regardless of the split).
func TestDIAMulVecPoolMatchesSerial(t *testing.T) {
	n := 513
	main := make([]float64, n)
	off := make([]float64, n)
	far := make([]float64, n)
	for i := range main {
		main[i] = 4 + float64(i%7)
		off[i] = -1 + 0.01*float64(i%5)
		far[i] = 0.25
	}
	a := NewDIA(n, map[int][]float64{0: main, 1: off, -1: off, 7: far, -7: far})

	x := vec.New(n)
	vec.Random(x, 11)
	want := vec.New(n)
	a.MulVec(want, x)
	for _, w := range []int{1, 2, runtime.GOMAXPROCS(0), n + 3} {
		pool := vec.NewPoolMinChunk(w, 1)
		got := vec.New(n)
		vec.Fill(got, -321)
		a.MulVecPool(pool, got, x)
		if !vec.Equal(want, got) {
			t.Fatalf("workers=%d: DIA MulVecPool differs from MulVec", w)
		}
		pool.Close()
	}
}

// TestStencilMulVecPoolMatchesSerial: every stencil kind's pooled
// product is bitwise identical to the serial one, including splits that
// cut mid-scanline and mid-plane.
func TestStencilMulVecPoolMatchesSerial(t *testing.T) {
	cases := []struct {
		kind StencilKind
		m    int
	}{
		{Stencil1D3, 257},
		{Stencil2D5, 19},
		{Stencil2D9, 17},
		{Stencil3D7, 9},
		{Stencil3D27, 7},
	}
	for _, tc := range cases {
		s := NewStencil(tc.kind, tc.m)
		n := s.Dim()
		x := vec.New(n)
		vec.Random(x, uint64(n))
		want := vec.New(n)
		s.MulVec(want, x)
		for _, w := range []int{2, 3, runtime.GOMAXPROCS(0), n + 1} {
			pool := vec.NewPoolMinChunk(w, 1)
			got := vec.New(n)
			vec.Fill(got, -321)
			s.MulVecPool(pool, got, x)
			if !vec.Equal(want, got) {
				t.Fatalf("%s workers=%d: Stencil MulVecPool differs from MulVec", tc.kind, w)
			}
			pool.Close()
		}
	}
}

// TestOpsPoolZeroAlloc: warm pooled DIA and Stencil products allocate
// nothing (the row-range kernel is a cached method value, not a fresh
// closure).
func TestOpsPoolZeroAlloc(t *testing.T) {
	pool := vec.NewPoolMinChunk(4, 64)
	defer pool.Close()

	st := NewStencil(Stencil2D5, 64) // n=4096
	x := vec.New(st.Dim())
	vec.Random(x, 5)
	dst := vec.New(st.Dim())
	st.MulVecPool(pool, dst, x)
	if avg := testing.AllocsPerRun(100, func() { st.MulVecPool(pool, dst, x) }); avg != 0 {
		t.Errorf("warm Stencil MulVecPool allocates %v per call, want 0", avg)
	}

	n := 4096
	main := make([]float64, n)
	off := make([]float64, n)
	for i := range main {
		main[i] = 4
		off[i] = -1
	}
	d := NewDIA(n, map[int][]float64{0: main, 1: off, -1: off})
	xd := vec.New(n)
	vec.Random(xd, 6)
	dd := vec.New(n)
	d.MulVecPool(pool, dd, xd)
	if avg := testing.AllocsPerRun(100, func() { d.MulVecPool(pool, dd, xd) }); avg != 0 {
		t.Errorf("warm DIA MulVecPool allocates %v per call, want 0", avg)
	}
}

// TestPooledMulVecDispatch: the single dispatch point routes every
// PoolMulVec implementer through the pool and everything else through
// the serial product.
func TestPooledMulVecDispatch(t *testing.T) {
	pool := vec.NewPoolMinChunk(2, 1)
	defer pool.Close()
	n := 64
	ops := []Matrix{Poisson1D(n), NewStencil(Stencil1D3, n)}
	x := vec.New(n)
	vec.Random(x, 9)
	for _, a := range ops {
		want := vec.New(n)
		a.MulVec(want, x)
		got := vec.New(n)
		PooledMulVec(a, pool, got, x)
		if !vec.Equal(want, got) {
			t.Fatalf("%T: PooledMulVec differs from MulVec", a)
		}
	}
}
