package sparse

import (
	"runtime"
	"testing"

	"vrcg/internal/vec"
)

// irregularCSR builds a matrix whose row lengths vary wildly (one dense
// arrow row plus a sparse tail), the shape that defeats equal-row-count
// partitioning.
func irregularCSR(n int) *CSR {
	coo := NewCOO(n)
	for j := 0; j < n; j++ {
		coo.Add(0, j, 1/float64(j+1))
	}
	for i := 1; i < n; i++ {
		coo.Add(i, i, 4)
		coo.Add(i, 0, 1/float64(i+1))
		if i+1 < n {
			coo.Add(i, i+1, -1)
		}
	}
	return coo.ToCSR()
}

// TestMulVecPoolMatchesSerial is the satellite equivalence property:
// the pooled SpMV must match the serial product bitwise (row-level
// parallelism does not reorder any row's accumulation) across worker
// counts 1, 2, NumCPU, and > rows.
func TestMulVecPoolMatchesSerial(t *testing.T) {
	mats := map[string]*CSR{
		"poisson2d": Poisson2D(17), // n=289
		"irregular": irregularCSR(400),
		"random":    RandomSPD(301, 7, 99),
		"tiny":      TridiagToeplitz(3, 4, -1),
	}
	for name, a := range mats {
		n := a.Dim()
		x := vec.New(n)
		vec.Random(x, uint64(n))
		want := vec.New(n)
		a.MulVec(want, x)
		for _, w := range []int{1, 2, runtime.GOMAXPROCS(0), n + 5} {
			pool := vec.NewPoolMinChunk(w, 1)
			got := vec.New(n)
			vec.Fill(got, -123)
			a.MulVecPool(pool, got, x)
			if !vec.Equal(want, got) {
				t.Fatalf("%s n=%d workers=%d: MulVecPool differs from MulVec", name, n, w)
			}
			pool.Close()
		}
	}
}

// TestMulVecPoolZeroAlloc: a warm pooled SpMV allocates nothing.
func TestMulVecPoolZeroAlloc(t *testing.T) {
	a := Poisson2D(64) // n=4096
	pool := vec.NewPoolMinChunk(4, 64)
	defer pool.Close()
	x := vec.New(a.Dim())
	vec.Random(x, 21)
	dst := vec.New(a.Dim())
	a.MulVecPool(pool, dst, x) // warm partition cache + workers
	if avg := testing.AllocsPerRun(100, func() { a.MulVecPool(pool, dst, x) }); avg != 0 {
		t.Errorf("warm MulVecPool allocates %v per call, want 0", avg)
	}
}

// TestRowPartitionBalance: the partition covers all rows, is strictly
// increasing, and each chunk's nonzero count is within one row of the
// ideal share (equal work, not equal rows).
func TestRowPartitionBalance(t *testing.T) {
	for name, a := range map[string]*CSR{
		"poisson2d": Poisson2D(20),
		"irregular": irregularCSR(500),
	} {
		for _, parts := range []int{1, 2, 3, 8, 64} {
			bounds := a.RowPartition(parts)
			if bounds[0] != 0 || bounds[len(bounds)-1] != a.Dim() {
				t.Fatalf("%s parts=%d: bounds %v do not span rows", name, parts, bounds)
			}
			maxRow := a.MaxRowNonzeros()
			ideal := a.NNZ() / parts
			for c := 0; c+1 < len(bounds); c++ {
				if bounds[c+1] <= bounds[c] {
					t.Fatalf("%s parts=%d: bounds %v not strictly increasing", name, parts, bounds)
				}
				nnz := a.rowPtr[bounds[c+1]] - a.rowPtr[bounds[c]]
				// A chunk can exceed the ideal share by at most one row
				// (cuts land on row boundaries).
				if nnz > ideal+maxRow {
					t.Fatalf("%s parts=%d chunk %d: nnz=%d exceeds ideal %d + maxrow %d",
						name, parts, c, nnz, ideal, maxRow)
				}
			}
		}
	}
}

// TestRowPartitionBalancesIrregularRows checks the headline property on
// the arrow matrix: the dense first row must get a chunk to itself
// rather than dragging half the matrix with it.
func TestRowPartitionBalancesIrregularRows(t *testing.T) {
	a := irregularCSR(1000) // row 0 holds ~25% of all nonzeros
	bounds := a.RowPartition(4)
	if len(bounds) < 3 {
		t.Fatalf("partition collapsed: %v", bounds)
	}
	if bounds[1] != 1 {
		t.Fatalf("dense arrow row not isolated: first cut at %d, want 1 (bounds %v)", bounds[1], bounds)
	}
}

// TestToCSRSortBasedSemantics pins down the sort-based rebuild:
// duplicates sum, exact-zero sums are dropped, and columns come out
// sorted, including for unsorted and adversarial input orders.
func TestToCSRSortBasedSemantics(t *testing.T) {
	coo := NewCOO(4)
	coo.Add(2, 3, 5)
	coo.Add(0, 2, 1)
	coo.Add(2, 0, 2)
	coo.Add(0, 2, 1.5) // duplicate: sums to 2.5
	coo.Add(1, 1, 4)
	coo.Add(3, 1, 7)
	coo.Add(3, 1, -7) // cancels to zero: dropped
	coo.Add(0, 0, 3)
	a := coo.ToCSR()

	if got := a.NNZ(); got != 5 {
		t.Fatalf("NNZ = %d, want 5 (duplicate merged, zero dropped)", got)
	}
	if got := a.At(0, 2); got != 2.5 {
		t.Fatalf("A[0,2] = %v, want 2.5", got)
	}
	if got := a.At(3, 1); got != 0 {
		t.Fatalf("A[3,1] = %v, want 0 (dropped)", got)
	}
	if got := a.At(2, 0); got != 2 {
		t.Fatalf("A[2,0] = %v, want 2", got)
	}
	// Columns sorted within each row.
	for i := 0; i < a.Dim(); i++ {
		prev := -1
		a.ScanRow(i, func(j int, _ float64) {
			if j <= prev {
				t.Fatalf("row %d columns not strictly ascending", i)
			}
			prev = j
		})
	}
}

// TestToCSREmptyAndAllCancelled: degenerate inputs produce valid empty
// structures.
func TestToCSRDegenerate(t *testing.T) {
	if got := NewCOO(3).ToCSR().NNZ(); got != 0 {
		t.Fatalf("empty COO NNZ = %d", got)
	}
	coo := NewCOO(2)
	coo.Add(1, 0, 2)
	coo.Add(1, 0, -2)
	a := coo.ToCSR()
	if got := a.NNZ(); got != 0 {
		t.Fatalf("fully cancelled COO NNZ = %d", got)
	}
	y := vec.New(2)
	a.MulVec(y, vec.NewFrom([]float64{1, 1}))
	if y[0] != 0 || y[1] != 0 {
		t.Fatal("empty CSR MulVec nonzero")
	}
}
