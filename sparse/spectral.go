package sparse

import (
	"fmt"
	"math"

	"vrcg/internal/vec"
)

// Spectral estimation utilities: the polynomial preconditioners and the
// scaled look-ahead solvers need eigenvalue bounds. PowerMethod gives a
// sharp lambda-max estimate; Lanczos gives both ends of the spectrum;
// Gershgorin gives a cheap guaranteed upper bound.

// Gershgorin returns the maximum absolute row sum of a — a guaranteed
// upper bound on the spectral radius.
func Gershgorin(a *CSR) float64 {
	bound := 0.0
	for i := 0; i < a.Dim(); i++ {
		row := 0.0
		a.ScanRow(i, func(_ int, v float64) {
			row += math.Abs(v)
		})
		if row > bound {
			bound = row
		}
	}
	return bound
}

// PowerMethod estimates the largest eigenvalue of the symmetric operator
// a by power iteration with the given number of steps, returning the
// Rayleigh quotient estimate. The estimate approaches lambda-max from
// below.
func PowerMethod(a Matrix, steps int, seed uint64) float64 {
	if steps < 1 {
		panic("sparse: PowerMethod needs steps >= 1")
	}
	n := a.Dim()
	v := vec.New(n)
	vec.Random(v, seed)
	if nrm := vec.Norm2(v); nrm > 0 {
		vec.Scale(1/nrm, v)
	}
	av := vec.New(n)
	lambda := 0.0
	for s := 0; s < steps; s++ {
		a.MulVec(av, v)
		lambda = vec.Dot(v, av)
		nrm := vec.Norm2(av)
		if nrm == 0 {
			return 0 // v in the null space; operator is singular there
		}
		vec.ScaleTo(v, 1/nrm, av)
	}
	return lambda
}

// Lanczos runs steps of the symmetric Lanczos process (with full
// reorthogonalization for robustness at these small step counts) and
// returns estimates of the extreme eigenvalues of a as the extreme
// Ritz values.
func Lanczos(a Matrix, steps int, seed uint64) (lambdaMin, lambdaMax float64, err error) {
	if steps < 1 {
		return 0, 0, fmt.Errorf("sparse: Lanczos needs steps >= 1")
	}
	n := a.Dim()
	if steps > n {
		steps = n
	}
	basis := make([][]float64, 0, steps)
	alpha := make([]float64, 0, steps)
	beta := make([]float64, 0, steps) // beta[j] couples v_j and v_{j+1}

	v := vec.New(n)
	vec.Random(v, seed)
	if nrm := vec.Norm2(v); nrm > 0 {
		vec.Scale(1/nrm, v)
	}
	w := vec.New(n)
	for j := 0; j < steps; j++ {
		basis = append(basis, vec.Clone(v))
		a.MulVec(w, v)
		aj := vec.Dot(v, w)
		alpha = append(alpha, aj)
		// w <- w - alpha_j v_j - beta_{j-1} v_{j-1}, then full reorth.
		vec.Axpy(-aj, v, w)
		if j > 0 {
			vec.Axpy(-beta[j-1], basis[j-1], w)
		}
		for _, u := range basis {
			vec.Axpy(-vec.Dot(u, w), u, w)
		}
		bj := vec.Norm2(w)
		if bj < 1e-14 || j == steps-1 {
			break
		}
		beta = append(beta, bj)
		vec.ScaleTo(v, 1/bj, w)
	}

	evs := symTridiagEigenvalues(alpha, beta[:len(alpha)-1])
	return evs[0], evs[len(evs)-1], nil
}

// symTridiagEigenvalues computes all eigenvalues of the symmetric
// tridiagonal matrix with the given diagonal and off-diagonal, by
// bisection with Sturm sequence counts. Returned ascending.
func symTridiagEigenvalues(diag, off []float64) []float64 {
	m := len(diag)
	if m == 0 {
		return nil
	}
	if len(off) != m-1 {
		panic(fmt.Sprintf("sparse: tridiagonal with %d diagonal, %d off-diagonal entries", m, len(off)))
	}
	// Gershgorin interval for the tridiagonal.
	lo, hi := diag[0], diag[0]
	for i := 0; i < m; i++ {
		r := 0.0
		if i > 0 {
			r += math.Abs(off[i-1])
		}
		if i < m-1 {
			r += math.Abs(off[i])
		}
		if diag[i]-r < lo {
			lo = diag[i] - r
		}
		if diag[i]+r > hi {
			hi = diag[i] + r
		}
	}
	lo -= 1e-12 + 1e-12*math.Abs(lo)
	hi += 1e-12 + 1e-12*math.Abs(hi)

	// countBelow returns the number of eigenvalues < x (Sturm count).
	countBelow := func(x float64) int {
		count := 0
		d := 1.0
		for i := 0; i < m; i++ {
			var offSq float64
			if i > 0 {
				offSq = off[i-1] * off[i-1]
			}
			if d == 0 {
				d = 1e-300
			}
			d = diag[i] - x - offSq/d
			if d < 0 {
				count++
			}
		}
		return count
	}

	out := make([]float64, m)
	for k := 0; k < m; k++ {
		a, b := lo, hi
		for iter := 0; iter < 200 && b-a > 1e-13*(1+math.Abs(a)+math.Abs(b)); iter++ {
			mid := 0.5 * (a + b)
			if countBelow(mid) <= k {
				a = mid
			} else {
				b = mid
			}
		}
		out[k] = 0.5 * (a + b)
	}
	return out
}

// ConditionEstimate returns an estimate of the spectral condition number
// of the SPD operator a from a short Lanczos run.
func ConditionEstimate(a Matrix, steps int, seed uint64) (float64, error) {
	lmin, lmax, err := Lanczos(a, steps, seed)
	if err != nil {
		return 0, err
	}
	if lmin <= 0 {
		return math.Inf(1), nil
	}
	return lmax / lmin, nil
}

// SymDiagScaled returns the symmetrically diagonally scaled operator
// D^{-1/2} A D^{-1/2} (unit diagonal if A's diagonal is positive) plus
// the scaling vector d^{-1/2}. Solving the scaled system
// (D^{-1/2} A D^{-1/2}) y = D^{-1/2} b and setting x = D^{-1/2} y is
// exactly Jacobi-preconditioned CG expressed as a plain CG solve — the
// form of preconditioning directly compatible with the paper's
// recurrences.
func SymDiagScaled(a *CSR) (*CSR, []float64, error) {
	n := a.Dim()
	d := vec.New(n)
	a.Diag(d)
	invSqrt := vec.New(n)
	for i, v := range d {
		if v <= 0 {
			return nil, nil, fmt.Errorf("sparse: non-positive diagonal %g at row %d", v, i)
		}
		invSqrt[i] = 1 / math.Sqrt(v)
	}
	coo := NewCOO(n)
	for i := 0; i < n; i++ {
		a.ScanRow(i, func(j int, v float64) {
			coo.Add(i, j, v*invSqrt[i]*invSqrt[j])
		})
	}
	return coo.ToCSR(), invSqrt, nil
}
