package sparse

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"vrcg/internal/vec"
)

// SellC is the SELL chunk height: the number of consecutive row slots
// stored column-major in each chunk. It matches the 4-way accumulator
// unrolling of the vec kernels, so one chunk's lanes map onto the
// independent dependency chains the compiler vectorizes.
const SellC = 4

// DefaultSellSigma is the default sorting-window height (in row slots)
// for CSR→SELL conversion: large enough that skewed row lengths pack
// into mostly-full chunks, small enough that the row permutation stays
// local and x-access locality survives.
const DefaultSellSigma = 128

// SELL is a cache-blocked sparse format (SELL-C-σ): rows are grouped
// into chunks of SellC consecutive slots, each chunk is stored
// column-major and padded to the length of its longest row, and within
// every σ-row window the rows are sorted by descending length (stable,
// so equal-length rows keep matrix order) before being assigned to
// slots. Sorting keeps chunk-mates similar in length, which bounds
// padding even for skewed row-length distributions; the column-major
// chunk layout turns the per-chunk kernel into SellC independent
// accumulator chains with unit-stride value/column loads; and 32-bit
// column indices halve index bandwidth relative to CSR.
//
// Each row's entries keep their CSR (ascending-column) order, and chunk
// padding contributes terms of exactly +0.0, so MulVec is bitwise
// identical to CSR.MulVec for finite inputs. (Rows whose sum is -0.0
// and non-finite x entries — where 0·±Inf produces NaN in a padded
// lane — are the documented exceptions; CG iterates never hit either.)
//
// Construct with NewSELL or CSR.ToSELL; TuneMulVec picks the format
// automatically when profitable.
type SELL struct {
	n        int
	sigma    int
	nnz      int     // structural nonzeros (excludes padding)
	maxRow   int     // longest row (the paper's sparsity parameter d)
	perm     []int32 // slot -> original row; -1 marks a padding slot
	chunkPtr []int   // chunk c occupies vals[chunkPtr[c]:chunkPtr[c+1]]
	cols     []int32
	vals     []float64

	// part caches the most recent nnz-balanced chunk partition, and
	// kernel the RowKernel method value, so pooled dispatch is
	// allocation-free (see MulVecPool).
	part   atomic.Pointer[rowPartition]
	kernel vec.RowKernel
}

// ToSELL converts the matrix to SELL-C-σ form with the default sorting
// window.
func (m *CSR) ToSELL() *SELL { return NewSELL(m, DefaultSellSigma) }

// NewSELL converts a CSR matrix to SELL-C-σ form with the given sorting
// window (rows; rounded up to a multiple of SellC, non-positive means
// DefaultSellSigma). The conversion is O(nnz + n log σ) and the result
// shares no storage with the source. It panics if the padded entry
// count would overflow the 32-bit column indices; TuneMulVec screens
// for that instead of panicking.
func NewSELL(m *CSR, sigma int) *SELL {
	if sigma <= 0 {
		sigma = DefaultSellSigma
	}
	sigma = (sigma + SellC - 1) / SellC * SellC
	n := m.n
	if n > math.MaxInt32 {
		panic("sparse: NewSELL matrix order overflows int32 indices")
	}
	nslots := (n + SellC - 1) / SellC * SellC
	nchunks := nslots / SellC

	// Slot assignment: within each σ-window, order rows by descending
	// length, stable on row index.
	perm := make([]int32, nslots)
	for s := range perm {
		perm[s] = -1
	}
	rowLen := func(i int32) int { return m.rowPtr[i+1] - m.rowPtr[i] }
	for w0 := 0; w0 < n; w0 += sigma {
		w1 := w0 + sigma
		if w1 > n {
			w1 = n
		}
		win := perm[w0:w1]
		for k := range win {
			win[k] = int32(w0 + k)
		}
		sort.SliceStable(win, func(a, b int) bool { return rowLen(win[a]) > rowLen(win[b]) })
	}

	// Chunk extents, then the column-major fill.
	chunkPtr := make([]int, nchunks+1)
	padded := 0
	for c := 0; c < nchunks; c++ {
		width := 0
		for lane := 0; lane < SellC; lane++ {
			if row := perm[c*SellC+lane]; row >= 0 {
				if l := rowLen(row); l > width {
					width = l
				}
			}
		}
		padded += width * SellC
		chunkPtr[c+1] = padded
	}
	if padded > math.MaxInt32 {
		panic("sparse: NewSELL padded entry count overflows int32 indices")
	}
	cols := make([]int32, padded) // zero value = padding column 0
	vals := make([]float64, padded)
	for c := 0; c < nchunks; c++ {
		off := chunkPtr[c]
		for lane := 0; lane < SellC; lane++ {
			row := perm[c*SellC+lane]
			if row < 0 {
				continue
			}
			lo := m.rowPtr[row]
			for t := 0; t < rowLen(row); t++ {
				cols[off+t*SellC+lane] = int32(m.colIdx[lo+t])
				vals[off+t*SellC+lane] = m.vals[lo+t]
			}
		}
	}

	s := &SELL{
		n: n, sigma: sigma, nnz: len(m.vals), maxRow: m.MaxRowNonzeros(),
		perm: perm, chunkPtr: chunkPtr, cols: cols, vals: vals,
	}
	s.kernel = s.mulChunks
	return s
}

// Dim returns the order of the matrix.
func (s *SELL) Dim() int { return s.n }

// NNZ returns the number of structural nonzeros (padding excluded).
func (s *SELL) NNZ() int { return s.nnz }

// MaxRowNonzeros returns the maximum number of stored entries in any row.
func (s *SELL) MaxRowNonzeros() int { return s.maxRow }

// PaddedNNZ returns the stored entry count including chunk padding.
func (s *SELL) PaddedNNZ() int { return len(s.vals) }

// PaddingRatio returns the fraction of stored entries that are padding —
// the storage and bandwidth overhead this matrix pays for the blocked
// layout.
func (s *SELL) PaddingRatio() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	return float64(len(s.vals)-s.nnz) / float64(len(s.vals))
}

// Sigma returns the sorting-window height the matrix was built with.
func (s *SELL) Sigma() int { return s.sigma }

// mulChunks computes the chunk range [c0, c1) of dst = A*x: the SELL
// inner kernel and the RowKernel used by the pooled product. Writes go
// through perm, so distinct chunk ranges write disjoint dst elements.
func (s *SELL) mulChunks(c0, c1 int, dst, x []float64) {
	cols, vals := s.cols, s.vals
	for c := c0; c < c1; c++ {
		off := s.chunkPtr[c]
		end := s.chunkPtr[c+1]
		var a0, a1, a2, a3 float64
		for q := off; q < end; q += SellC {
			a0 += vals[q] * x[cols[q]]
			a1 += vals[q+1] * x[cols[q+1]]
			a2 += vals[q+2] * x[cols[q+2]]
			a3 += vals[q+3] * x[cols[q+3]]
		}
		base := c * SellC
		if r := s.perm[base]; r >= 0 {
			dst[r] = a0
		}
		if r := s.perm[base+1]; r >= 0 {
			dst[r] = a1
		}
		if r := s.perm[base+2]; r >= 0 {
			dst[r] = a2
		}
		if r := s.perm[base+3]; r >= 0 {
			dst[r] = a3
		}
	}
}

// MulVec computes dst = A*x, bitwise identical to the source CSR's
// MulVec for finite inputs (see the type comment for the exceptions).
func (s *SELL) MulVec(dst, x []float64) {
	checkMul(s, dst, x)
	s.mulChunks(0, len(s.chunkPtr)-1, dst, x)
}

// ChunkPartition returns boundaries splitting the chunks into at most
// parts contiguous ranges of near-equal stored-entry count (padding
// included — it costs the same bandwidth as real entries). The most
// recent partition is cached on the matrix.
func (s *SELL) ChunkPartition(parts int) []int {
	nchunks := len(s.chunkPtr) - 1
	if parts < 1 {
		parts = 1
	}
	if parts > nchunks {
		parts = nchunks
	}
	if cached := s.part.Load(); cached != nil && cached.parts == parts {
		return cached.bounds
	}
	bounds := nnzBalancedBounds(s.chunkPtr, parts)
	s.part.Store(&rowPartition{parts: parts, bounds: bounds})
	return bounds
}

// MulVecPool computes dst = A*x in parallel over the pool using the
// cached entry-balanced chunk partition, falling back to the serial
// MulVec when parallelism is not profitable. Chunk ranges write
// disjoint dst rows (perm is a bijection on real slots), so the result
// is bitwise identical to MulVec at any worker count.
func (s *SELL) MulVecPool(pool *Pool, dst, x []float64) {
	checkMul(s, dst, x)
	if pool == nil || pool.Workers() < 2 || len(s.vals) < pool.SpMVCutoff() {
		s.MulVec(dst, x)
		return
	}
	bounds := s.ChunkPartition(pool.Workers())
	if !pool.RowMulVecBounds(bounds, dst, x, s.kernel) {
		s.MulVec(dst, x)
	}
}

// At returns A[i,j] (zero if not stored). It scans row i's lane and is
// intended for tests, not hot paths.
func (s *SELL) At(i, j int) float64 {
	if i < 0 || i >= s.n || j < 0 || j >= s.n {
		panic(fmt.Sprintf("sparse: SELL.At index (%d,%d) out of range for n=%d", i, j, s.n))
	}
	for slot, row := range s.perm {
		if int(row) != i {
			continue
		}
		c, lane := slot/SellC, slot%SellC
		for q := s.chunkPtr[c] + lane; q < s.chunkPtr[c+1]; q += SellC {
			if int(s.cols[q]) == j && s.vals[q] != 0 {
				return s.vals[q]
			}
		}
		return 0
	}
	return 0
}

// tunedOp caches a TuneMulVec decision on the source CSR. A nil op
// records "evaluated: SELL not profitable, keep CSR".
type tunedOp struct{ op Matrix }

// sellMinDim is the smallest matrix order TuneMulVec will convert:
// below it SpMV is cheap enough that conversion cost and the extra
// format can't pay for themselves.
const sellMinDim = 2048

// sellMaxPadding is the largest SELL padding ratio TuneMulVec accepts.
// Padding costs bandwidth exactly like real entries, so beyond ~25%
// overhead the blocked layout's gains are eaten by the extra traffic
// and CSR stays the better format.
const sellMaxPadding = 0.25

// TuneMulVec returns the fastest available operator equivalent to a:
// for a CSR matrix large enough to matter it builds (once, cached on
// the matrix) a SELL-C-σ form and returns it when the conversion's
// padding overhead is acceptable; every other operator is returned
// unchanged. The engine calls this on entry to Solve, so all registry
// methods — including warm zero-alloc sessions, which hit the cache —
// run their SpMV on the blocked format when it wins. The returned
// operator's MulVec is bitwise identical to a's (see SELL), so tuning
// never changes results.
func TuneMulVec(a Matrix) Matrix {
	m, ok := a.(*CSR)
	if !ok {
		return a
	}
	if t := m.tuned.Load(); t != nil {
		if t.op != nil {
			return t.op
		}
		return a
	}
	dec := &tunedOp{}
	if m.n >= sellMinDim && m.n <= math.MaxInt32 && len(m.vals) > 0 {
		// Conservative pre-check of the padded size before building:
		// padding can at most round every row up to the window max, so
		// a matrix whose nnz is already near MaxInt32 is screened out.
		if len(m.vals) <= math.MaxInt32/2 {
			if s := NewSELL(m, DefaultSellSigma); s.PaddingRatio() <= sellMaxPadding {
				dec.op = s
			}
		}
	}
	m.tuned.Store(dec)
	if dec.op != nil {
		return dec.op
	}
	return a
}

var (
	_ Matrix     = (*SELL)(nil)
	_ Sparse     = (*SELL)(nil)
	_ PoolMulVec = (*SELL)(nil)
)
