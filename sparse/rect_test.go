package sparse

import (
	"math/rand"
	"testing"
)

// denseRef multiplies y = D x for a row-major rows×cols dense array —
// the independent reference every rectangular product is checked
// against.
func denseRef(rows, cols int, data, x []float64) []float64 {
	y := make([]float64, rows)
	for i := 0; i < rows; i++ {
		var s float64
		for j := 0; j < cols; j++ {
			s += data[i*cols+j] * x[j]
		}
		y[i] = s
	}
	return y
}

// denseRefT multiplies y = Dᵀ x.
func denseRefT(rows, cols int, data, x []float64) []float64 {
	y := make([]float64, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			y[j] += data[i*cols+j] * x[i]
		}
	}
	return y
}

// randomRect builds a sparse rows×cols matrix (≈density fill) alongside
// its dense image.
func randomRect(rng *rand.Rand, rows, cols int, density float64) (*Rect, []float64) {
	data := make([]float64, rows*cols)
	for i := range data {
		if rng.Float64() < density {
			data[i] = rng.NormFloat64()
		}
	}
	return RectFromDense(rows, cols, data), data
}

func TestRectMulVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, shape := range [][2]int{{1, 1}, {7, 3}, {3, 7}, {40, 40}, {61, 13}} {
		rows, cols := shape[0], shape[1]
		m, data := randomRect(rng, rows, cols, 0.4)
		if m.Rows() != rows || m.Cols() != cols || m.Dim() != rows {
			t.Fatalf("%dx%d: got Rows=%d Cols=%d Dim=%d", rows, cols, m.Rows(), m.Cols(), m.Dim())
		}
		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		dst := make([]float64, rows)
		m.MulVec(dst, x)
		want := denseRef(rows, cols, data, x)
		for i := range dst {
			if diff := dst[i] - want[i]; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("%dx%d MulVec: dst[%d] = %g, want %g", rows, cols, i, dst[i], want[i])
			}
		}

		xt := make([]float64, rows)
		for i := range xt {
			xt[i] = rng.NormFloat64()
		}
		dstT := make([]float64, cols)
		m.MulVecT(dstT, xt)
		wantT := denseRefT(rows, cols, data, xt)
		for i := range dstT {
			if diff := dstT[i] - wantT[i]; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("%dx%d MulVecT: dst[%d] = %g, want %g", rows, cols, i, dstT[i], wantT[i])
			}
		}
	}
}

// TestRectPooledProductsBitwiseIdentical: the pooled paths must produce
// bit-for-bit the serial answer — partition changes work distribution,
// never summation order within a row.
func TestRectPooledProductsBitwiseIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pool := NewPool(4)
	defer pool.Close()
	rows, cols := 97, 23
	m, _ := randomRect(rng, rows, cols, 0.3)

	x := make([]float64, cols)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	serial := make([]float64, rows)
	pooled := make([]float64, rows)
	m.MulVec(serial, x)
	m.MulVecPool(pool, pooled, x)
	for i := range serial {
		if serial[i] != pooled[i] {
			t.Fatalf("MulVecPool differs at %d: %g vs %g", i, pooled[i], serial[i])
		}
	}

	xt := make([]float64, rows)
	for i := range xt {
		xt[i] = rng.NormFloat64()
	}
	serialT := make([]float64, cols)
	pooledT := make([]float64, cols)
	m.MulVecT(serialT, xt)
	PooledMulVecT(m, pool, pooledT, xt)
	for i := range serialT {
		if serialT[i] != pooledT[i] {
			t.Fatalf("PooledMulVecT differs at %d: %g vs %g", i, pooledT[i], serialT[i])
		}
	}
}

// TestCSRMulVecTMatchesDense: the square transpose path used by the
// nonsymmetric kernels.
func TestCSRMulVecTMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 50
	coo := NewCOO(n)
	data := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.15 || i == j {
				v := rng.NormFloat64()
				coo.Add(i, j, v)
				data[i*n+j] = v
			}
		}
	}
	m := coo.ToCSR()
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	dst := make([]float64, n)
	m.MulVecT(dst, x)
	want := denseRefT(n, n, data, x)
	for i := range dst {
		if diff := dst[i] - want[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("CSR MulVecT: dst[%d] = %g, want %g", i, dst[i], want[i])
		}
	}

	pool := NewPool(3)
	defer pool.Close()
	pooled := make([]float64, n)
	m.MulVecTPool(pool, pooled, x)
	for i := range dst {
		if dst[i] != pooled[i] {
			t.Fatalf("CSR MulVecTPool differs at %d: %g vs %g", i, pooled[i], dst[i])
		}
	}
}

// TestRectValueMutationInvalidatesTranspose: Scale and SetValues must
// invalidate the cached transpose so MulVecT tracks the new values.
func TestRectValueMutationInvalidatesTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	rows, cols := 30, 8
	m, data := randomRect(rng, rows, cols, 0.5)
	x := make([]float64, rows)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	before := make([]float64, cols)
	m.MulVecT(before, x) // warms the transpose cache

	m.Scale(3)
	after := make([]float64, cols)
	m.MulVecT(after, x)
	for i := range after {
		if diff := after[i] - 3*before[i]; diff > 1e-10 || diff < -1e-10 {
			t.Fatalf("after Scale(3), MulVecT[%d] = %g, want %g (stale transpose cache?)", i, after[i], 3*before[i])
		}
	}

	// SetValues back to the originals restores the original product.
	orig := make([]float64, 0, m.NNZ())
	for _, v := range data {
		if v != 0 {
			orig = append(orig, v)
		}
	}
	m.SetValues(orig)
	m.MulVecT(after, x)
	for i := range after {
		if diff := after[i] - before[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("after SetValues, MulVecT[%d] = %g, want %g", i, after[i], before[i])
		}
	}
}

// TestCSRValueMutationInvalidatesTranspose: same property on the square
// type, whose transpose cache rides next to the format-tuning cache.
func TestCSRValueMutationInvalidatesTranspose(t *testing.T) {
	m := Poisson1D(20)
	x := make([]float64, m.Dim())
	for i := range x {
		x[i] = float64(i%3) - 1
	}
	before := make([]float64, m.Dim())
	m.MulVecT(before, x)

	m.Scale(2)
	after := make([]float64, m.Dim())
	m.MulVecT(after, x)
	for i := range after {
		if diff := after[i] - 2*before[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("after Scale(2), CSR MulVecT[%d] = %g, want %g", i, after[i], 2*before[i])
		}
	}
}

// TestRectCloneValuesIsolation: clones share structure but own their
// values — mutating one never shows through the other.
func TestRectCloneValuesIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	rows, cols := 25, 6
	m, _ := randomRect(rng, rows, cols, 0.5)
	c := m.CloneValues()
	if c.Rows() != rows || c.Cols() != cols || c.NNZ() != m.NNZ() {
		t.Fatalf("clone shape %dx%d nnz %d, want %dx%d nnz %d", c.Rows(), c.Cols(), c.NNZ(), rows, cols, m.NNZ())
	}

	x := make([]float64, cols)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	origProduct := make([]float64, rows)
	m.MulVec(origProduct, x)

	c.Scale(10)
	got := make([]float64, rows)
	m.MulVec(got, x)
	for i := range got {
		if got[i] != origProduct[i] {
			t.Fatalf("scaling the clone changed the original at %d: %g vs %g", i, got[i], origProduct[i])
		}
	}
	c.MulVec(got, x)
	for i := range got {
		if diff := got[i] - 10*origProduct[i]; diff > 1e-10 || diff < -1e-10 {
			t.Fatalf("clone product[%d] = %g, want %g", i, got[i], 10*origProduct[i])
		}
	}
}

// TestRectRejectsMalformed: NewRect validates its arrays.
func TestRectRejectsMalformed(t *testing.T) {
	cases := []struct {
		name           string
		rows, cols     int
		rowPtr, colIdx []int
		vals           []float64
	}{
		{"short rowPtr", 2, 2, []int{0, 1}, []int{0}, []float64{1}},
		{"rowPtr not ending at nnz", 2, 2, []int{0, 1, 3}, []int{0, 1}, []float64{1, 2}},
		{"column out of range", 1, 2, []int{0, 1}, []int{2}, []float64{1}},
		{"negative column", 1, 2, []int{0, 1}, []int{-1}, []float64{1}},
		{"vals/colIdx mismatch", 1, 2, []int{0, 1}, []int{0}, []float64{1, 2}},
		{"nonpositive dims", 0, 2, []int{0}, nil, nil},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewRect(%s): expected panic", tc.name)
				}
			}()
			NewRect(tc.rows, tc.cols, tc.rowPtr, tc.colIdx, tc.vals)
		}()
	}
}

// TestRectSortsRowEntries: NewRect accepts unsorted in-row entries and
// canonicalizes them.
func TestRectSortsRowEntries(t *testing.T) {
	// Row 0: entries at columns 2, 0 given out of order.
	m := NewRect(2, 3, []int{0, 2, 3}, []int{2, 0, 1}, []float64{5, 3, 7})
	if got := m.At(0, 0); got != 3 {
		t.Errorf("At(0,0) = %g, want 3", got)
	}
	if got := m.At(0, 2); got != 5 {
		t.Errorf("At(0,2) = %g, want 5", got)
	}
	x := []float64{1, 10, 100}
	dst := make([]float64, 2)
	m.MulVec(dst, x)
	if dst[0] != 503 || dst[1] != 70 {
		t.Errorf("MulVec = %v, want [503 70]", dst)
	}
}
