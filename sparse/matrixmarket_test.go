package sparse

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"vrcg/internal/vec"
)

func TestMatrixMarketRoundTripGeneral(t *testing.T) {
	a := RandomSPD(20, 4, 3)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, a, false); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Dim() != a.Dim() || back.NNZ() != a.NNZ() {
		t.Fatalf("shape changed: %d/%d vs %d/%d", back.Dim(), back.NNZ(), a.Dim(), a.NNZ())
	}
	x := vec.New(20)
	vec.Random(x, 1)
	y1 := vec.New(20)
	y2 := vec.New(20)
	a.MulVec(y1, x)
	back.MulVec(y2, x)
	if !vec.EqualTol(y1, y2, 1e-14) {
		t.Fatal("round trip changed the operator")
	}
}

func TestMatrixMarketRoundTripSymmetric(t *testing.T) {
	a := Poisson2D(5)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, a, true); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "symmetric") {
		t.Fatal("symmetric qualifier missing")
	}
	back, err := ReadMatrixMarket(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != a.NNZ() {
		t.Fatalf("symmetric expansion wrong: %d vs %d nonzeros", back.NNZ(), a.NNZ())
	}
	x := vec.New(a.Dim())
	vec.Random(x, 2)
	y1 := vec.New(a.Dim())
	y2 := vec.New(a.Dim())
	a.MulVec(y1, x)
	back.MulVec(y2, x)
	if !vec.EqualTol(y1, y2, 1e-14) {
		t.Fatal("symmetric round trip changed the operator")
	}
}

func TestReadMatrixMarketPattern(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate pattern symmetric
% a triangle graph adjacency
3 3 3
2 1
3 1
3 2
`
	a, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if a.At(0, 1) != 1 || a.At(1, 0) != 1 || a.At(2, 0) != 1 {
		t.Fatal("pattern entries not set to 1 / mirrored")
	}
	if a.At(0, 0) != 0 {
		t.Fatal("unexpected diagonal entry")
	}
}

func TestReadMatrixMarketWithComments(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real general
% comment one
% comment two

2 2 2
1 1 4.5
2 2 -1.25
`
	a, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 4.5 || a.At(1, 1) != -1.25 {
		t.Fatalf("values wrong: %v %v", a.At(0, 0), a.At(1, 1))
	}
}

func TestReadMatrixMarketErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad header":   "%%NotMatrixMarket x y z w\n1 1 1\n1 1 1\n",
		"array format": "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n",
		"complex":      "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
		"skew":         "%%MatrixMarket matrix coordinate real skew-symmetric\n1 1 0\n",
		"rectangular":  "%%MatrixMarket matrix coordinate real general\n2 3 1\n1 1 1\n",
		"short":        "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1\n",
		"bad index":    "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1\n",
		"bad value":    "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 zzz\n",
		"no size":      "%%MatrixMarket matrix coordinate real general\n% only comments\n",
	}
	for name, src := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestVectorRoundTrip(t *testing.T) {
	v := vec.New(17)
	vec.Random(v, 9)
	var buf bytes.Buffer
	if err := WriteMatrixMarketVector(&buf, v); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarketVector(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.EqualTol(back, v, 0) {
		t.Fatal("vector round trip lossy")
	}
}

func TestReadVectorErrors(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"coordinate":  "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 1\n",
		"two columns": "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n",
		"short":       "%%MatrixMarket matrix array real general\n3 1\n1\n2\n",
		"bad value":   "%%MatrixMarket matrix array real general\n1 1\nxyz\n",
	}
	for name, src := range cases {
		if _, err := ReadMatrixMarketVector(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// Property: write/read round trip preserves the operator action for
// random matrices, both general and symmetric paths.
func TestPropMatrixMarketRoundTrip(t *testing.T) {
	f := func(seed uint64, symRaw bool, szRaw uint8) bool {
		n := int(szRaw)%25 + 2
		a := RandomSPD(n, 3, seed)
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, a, symRaw); err != nil {
			return false
		}
		back, err := ReadMatrixMarket(&buf)
		if err != nil {
			return false
		}
		x := vec.New(n)
		vec.Random(x, seed+1)
		y1 := vec.New(n)
		y2 := vec.New(n)
		a.MulVec(y1, x)
		back.MulVec(y2, x)
		return vec.EqualTol(y1, y2, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
