package sparse

import (
	"math"
	"testing"
	"testing/quick"

	"vrcg/internal/vec"
)

func TestGershgorinPoisson(t *testing.T) {
	if got := Gershgorin(Poisson1D(16)); got != 4 {
		t.Fatalf("Gershgorin = %v, want 4", got)
	}
	if got := Gershgorin(Poisson2D(6)); got != 8 {
		t.Fatalf("Gershgorin 2D = %v, want 8", got)
	}
}

func TestPowerMethodDiagonal(t *testing.T) {
	a := DiagonalMatrix(vec.NewFrom([]float64{1, 3, 7, 2}))
	got := PowerMethod(a, 200, 1)
	if math.Abs(got-7) > 1e-8 {
		t.Fatalf("PowerMethod = %v, want 7", got)
	}
}

func TestPowerMethodPoisson1DKnownSpectrum(t *testing.T) {
	// lambda_max = 2 - 2 cos(m pi/(m+1)).
	m := 32
	a := Poisson1D(m)
	want := 2 - 2*math.Cos(float64(m)*math.Pi/float64(m+1))
	got := PowerMethod(a, 500, 2)
	if math.Abs(got-want) > 1e-4*want {
		t.Fatalf("PowerMethod = %v, want %v", got, want)
	}
}

func TestPowerMethodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PowerMethod(Poisson1D(4), 0, 1)
}

func TestSymTridiagEigenvalues(t *testing.T) {
	// The m x m [-1 2 -1] tridiagonal has eigenvalues 2-2cos(k pi/(m+1)).
	m := 8
	diag := make([]float64, m)
	off := make([]float64, m-1)
	for i := range diag {
		diag[i] = 2
	}
	for i := range off {
		off[i] = -1
	}
	evs := symTridiagEigenvalues(diag, off)
	for k := 1; k <= m; k++ {
		want := 2 - 2*math.Cos(float64(k)*math.Pi/float64(m+1))
		if math.Abs(evs[k-1]-want) > 1e-8 {
			t.Fatalf("eigenvalue %d = %v, want %v", k, evs[k-1], want)
		}
	}
}

func TestSymTridiagSingleEntry(t *testing.T) {
	evs := symTridiagEigenvalues([]float64{5}, nil)
	if len(evs) != 1 || math.Abs(evs[0]-5) > 1e-10 {
		t.Fatalf("1x1 eigenvalue %v", evs)
	}
}

func TestLanczosExtremesDiagonal(t *testing.T) {
	d := vec.New(40)
	for i := range d {
		d[i] = 1 + float64(i) // spectrum 1..40
	}
	a := DiagonalMatrix(d)
	lmin, lmax, err := Lanczos(a, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lmin-1) > 1e-6 || math.Abs(lmax-40) > 1e-6 {
		t.Fatalf("Lanczos extremes [%v, %v], want [1, 40]", lmin, lmax)
	}
}

func TestLanczosShortRunBrackets(t *testing.T) {
	// Even a short Lanczos run gives Ritz values inside the spectrum,
	// with the extreme Ritz values approaching the extreme eigenvalues.
	a := Poisson1D(64)
	lmin, lmax, err := Lanczos(a, 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	trueMin := 2 - 2*math.Cos(math.Pi/65)
	trueMax := 2 - 2*math.Cos(64*math.Pi/65)
	if lmin < trueMin-1e-10 || lmax > trueMax+1e-10 {
		t.Fatalf("Ritz values [%v, %v] outside spectrum [%v, %v]", lmin, lmax, trueMin, trueMax)
	}
	if lmax < 0.9*trueMax {
		t.Fatalf("lambda-max estimate %v too far from %v", lmax, trueMax)
	}
}

func TestLanczosErrors(t *testing.T) {
	if _, _, err := Lanczos(Poisson1D(4), 0, 1); err == nil {
		t.Fatal("expected error for steps=0")
	}
}

func TestConditionEstimate(t *testing.T) {
	a := PrescribedSpectrum(50, 100)
	kappa, err := ConditionEstimate(a, 50, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(kappa-100) > 1 {
		t.Fatalf("condition estimate %v, want ~100", kappa)
	}
}

func TestSymDiagScaledUnitDiagonal(t *testing.T) {
	a := RandomSPD(25, 4, 11)
	scaled, invSqrt, err := SymDiagScaled(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if math.Abs(scaled.At(i, i)-1) > 1e-12 {
			t.Fatalf("scaled diagonal %v at %d", scaled.At(i, i), i)
		}
	}
	if !scaled.IsSymmetric(1e-12) {
		t.Fatal("scaling broke symmetry")
	}
	// Verify the similarity action: A x == D^{1/2} Ã D^{1/2} x,
	// where D^{1/2} multiplies by 1/invSqrt componentwise.
	x := vec.New(25)
	vec.Random(x, 12)
	want := vec.New(25)
	a.MulVec(want, x)
	tmp := vec.New(25)
	got := vec.New(25)
	for i := range tmp {
		tmp[i] = x[i] / invSqrt[i]
	}
	scaled.MulVec(got, tmp)
	for i := range got {
		got[i] /= invSqrt[i]
	}
	if !vec.EqualTol(got, want, 1e-10) {
		t.Fatal("scaled operator does not reproduce A")
	}
}

func TestSymDiagScaledRejectsBadDiagonal(t *testing.T) {
	coo := NewCOO(2)
	coo.Add(0, 0, 1)
	coo.Add(1, 1, -2)
	if _, _, err := SymDiagScaled(coo.ToCSR()); err == nil {
		t.Fatal("expected error")
	}
}

// Property: PowerMethod estimate is bounded by the Gershgorin bound and
// positive for SPD matrices.
func TestPropPowerMethodBounds(t *testing.T) {
	f := func(seed uint64, szRaw uint8) bool {
		n := int(szRaw)%30 + 3
		a := RandomSPD(n, 4, seed)
		lam := PowerMethod(a, 60, seed+1)
		return lam > 0 && lam <= Gershgorin(a)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Lanczos Ritz extremes are inside [Rayleigh bounds] and
// ordered.
func TestPropLanczosOrdered(t *testing.T) {
	f := func(seed uint64, szRaw uint8) bool {
		n := int(szRaw)%25 + 5
		a := RandomSPD(n, 3, seed)
		lmin, lmax, err := Lanczos(a, n, seed+2)
		if err != nil {
			return false
		}
		return lmin > 0 && lmin <= lmax && lmax <= Gershgorin(a)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
