package sparse

import (
	"fmt"
	"sort"

	"vrcg/internal/vec"
)

// Reverse Cuthill–McKee ordering: permutes a symmetric sparse matrix to
// reduce its bandwidth. Contiguous row-block partitions of a banded
// matrix have small halos, so RCM directly shrinks the communication
// volume of the distributed solvers (parcg builds halos from whatever
// structure it is given).

// RCMOrder computes the reverse Cuthill–McKee permutation of the
// symmetric matrix a: perm[newIndex] = oldIndex. Disconnected components
// are handled by restarting from the lowest-degree unvisited vertex.
func RCMOrder(a *CSR) []int {
	n := a.Dim()
	degree := make([]int, n)
	for i := 0; i < n; i++ {
		a.ScanRow(i, func(j int, _ float64) {
			if j != i {
				degree[i]++
			}
		})
	}
	visited := make([]bool, n)
	order := make([]int, 0, n)
	queue := make([]int, 0, n)

	for len(order) < n {
		// Start vertex: unvisited vertex of minimum degree (a cheap
		// pseudo-peripheral heuristic).
		start := -1
		for i := 0; i < n; i++ {
			if !visited[i] && (start < 0 || degree[i] < degree[start]) {
				start = i
			}
		}
		visited[start] = true
		queue = append(queue[:0], start)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			var nbrs []int
			a.ScanRow(v, func(j int, _ float64) {
				if j != v && !visited[j] {
					nbrs = append(nbrs, j)
					visited[j] = true
				}
			})
			sort.Slice(nbrs, func(x, y int) bool { return degree[nbrs[x]] < degree[nbrs[y]] })
			queue = append(queue, nbrs...)
		}
	}
	// Reverse (the "R" in RCM).
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// PermuteSymmetric applies the permutation symmetrically: the result B
// satisfies B[i][j] = A[perm[i]][perm[j]], preserving symmetry and the
// spectrum.
func PermuteSymmetric(a *CSR, perm []int) (*CSR, error) {
	n := a.Dim()
	if len(perm) != n {
		return nil, fmt.Errorf("sparse: permutation length %d for order %d", len(perm), n)
	}
	inv := make([]int, n)
	seen := make([]bool, n)
	for newI, oldI := range perm {
		if oldI < 0 || oldI >= n || seen[oldI] {
			return nil, fmt.Errorf("sparse: invalid permutation entry %d", oldI)
		}
		seen[oldI] = true
		inv[oldI] = newI
	}
	coo := NewCOO(n)
	for oldI := 0; oldI < n; oldI++ {
		a.ScanRow(oldI, func(oldJ int, v float64) {
			coo.Add(inv[oldI], inv[oldJ], v)
		})
	}
	return coo.ToCSR(), nil
}

// PermuteVector rearranges x so it corresponds to the permuted matrix:
// out[i] = x[perm[i]].
func PermuteVector(x []float64, perm []int) ([]float64, error) {
	if len(perm) != len(x) {
		return nil, fmt.Errorf("sparse: permutation length %d for vector length %d", len(perm), len(x))
	}
	out := vec.New(len(x))
	for i, p := range perm {
		if p < 0 || p >= len(x) {
			return nil, fmt.Errorf("sparse: invalid permutation entry %d", p)
		}
		out[i] = x[p]
	}
	return out, nil
}

// UnpermuteVector inverts PermuteVector: out[perm[i]] = x[i].
func UnpermuteVector(x []float64, perm []int) ([]float64, error) {
	if len(perm) != len(x) {
		return nil, fmt.Errorf("sparse: permutation length %d for vector length %d", len(perm), len(x))
	}
	out := vec.New(len(x))
	for i, p := range perm {
		if p < 0 || p >= len(x) {
			return nil, fmt.Errorf("sparse: invalid permutation entry %d", p)
		}
		out[p] = x[i]
	}
	return out, nil
}

// Bandwidth returns max |i - j| over stored nonzeros.
func Bandwidth(a *CSR) int {
	bw := 0
	for i := 0; i < a.Dim(); i++ {
		a.ScanRow(i, func(j int, _ float64) {
			d := i - j
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		})
	}
	return bw
}
