// Command cgsolve solves generated SPD test systems with any method in
// the solve registry, printing convergence and operation statistics.
// The -method vocabulary comes from solve.Methods() at runtime, so a
// newly registered solver appears here without touching this file.
//
// Examples:
//
//	cgsolve -problem poisson2d -m 64 -method cg
//	cgsolve -problem poisson2d -m 64 -method vrcg -k 3
//	cgsolve -problem poisson3d -m 16 -method pcg -precond ssor
//	cgsolve -problem ring -n 2048 -method gmres -restart 30
//	cgsolve -matrix general.mtx -method bicgstab
//	cgsolve -problem toeplitz -n 4096 -method sstep -s 4
//	cgsolve -problem poisson3d -m 32 -method pcg -workers 8 -repeat 16
//	cgsolve -problem poisson2d -m 24 -method parcg -k 4 -procs 64
//
// The -matrix flag loads a MatrixMarket .mtx system through the public
// sparse package (with -rhs for an array-format right-hand side); the
// -workers flag routes the solve through the hot-path execution
// engine: a persistent worker pool for the vector kernels plus the
// nnz-balanced parallel SpMV (0 = all CPUs, 1 = serial kernels).
// -repeat re-solves the same system -repeat times (reporting the last
// solve) through one prepared solve.Session, reusing the solver
// workspace for the methods that have one (cg, pcg, pipecg) — the
// zero-allocation steady-state regime the serving API is built for.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"vrcg/internal/vec"
	"vrcg/precond"
	"vrcg/solve"
	"vrcg/sparse"
)

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "cgsolve: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	problem := flag.String("problem", "poisson2d", "poisson1d|poisson2d|poisson3d|toeplitz|random|ring|spectrum")
	matrixFile := flag.String("matrix", "", "MatrixMarket coordinate-format .mtx matrix file (overrides -problem)")
	rhsFile := flag.String("rhs", "", "MatrixMarket array-format right-hand-side file (with -matrix)")
	m := flag.Int("m", 32, "grid side for poisson problems")
	n := flag.Int("n", 1024, "order for non-grid problems")
	kappa := flag.Float64("kappa", 100, "condition number for -problem spectrum")
	method := flag.String("method", "cg", "solver method: "+solve.Usage())
	pc := flag.String("precond", "jacobi", "pcg preconditioner: identity|jacobi|ssor|ic0")
	k := flag.Int("k", 2, "look-ahead parameter for vrcg/parcg")
	s := flag.Int("s", 4, "block size for sstep")
	restart := flag.Int("restart", 0, "gmres restart length m (0 = method default)")
	procs := flag.Int("procs", 8, "simulated processor count for the parcg methods")
	tol := flag.Float64("tol", 1e-8, "relative residual tolerance")
	maxIter := flag.Int("maxiter", 0, "iteration cap (0 = method default)")
	seed := flag.Uint64("seed", 1, "rhs/solution seed")
	workers := flag.Int("workers", 0, "engine worker count (0 = all CPUs, 1 = serial kernels)")
	repeat := flag.Int("repeat", 1, "solve the system this many times, reusing workspaces")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), `usage: cgsolve [flags]

registered methods (one-liners from solve.Describe):
%s
file formats (the public sparse package reader):
  -matrix  MatrixMarket coordinate format: "%%%%MatrixMarket matrix coordinate
           real|integer|pattern general|symmetric" headers; symmetric
           entries are mirrored, the matrix must be square SPD.
  -rhs     MatrixMarket array format: one real column, length equal to
           the matrix order. Omitted: a right-hand side is manufactured
           from a random known solution so the error is checkable.

flags:
`, solve.Describe())
		flag.PrintDefaults()
	}
	flag.Parse()

	if *workers < 0 {
		fatalf("-workers must be >= 0")
	}
	if *repeat < 1 {
		fatalf("-repeat must be >= 1")
	}
	var pool *sparse.Pool
	if *workers != 1 {
		if *workers == 0 {
			pool = sparse.DefaultPool
		} else {
			pool = sparse.NewPool(*workers)
		}
	}

	var a *sparse.CSR
	if *matrixFile != "" {
		f, err := os.Open(*matrixFile)
		if err != nil {
			fatalf("open matrix: %v", err)
		}
		a, err = sparse.ReadMatrixMarket(f)
		f.Close()
		if err != nil {
			fatalf("parse matrix: %v", err)
		}
		// The CG family needs symmetry; the general-operator methods
		// (bicgstab, gmres, cgnr, lsqr) advertise otherwise via their
		// registry caps, so a nonsymmetric .mtx is fine for them.
		if !solve.MethodCaps(*method).Nonsymmetric && !a.IsSymmetric(1e-12) {
			fatalf("matrix %s is not symmetric; method %q requires SPD (pick a nonsymmetric-capable method: see -method list)",
				*matrixFile, *method)
		}
		*problem = *matrixFile
	} else {
		switch *problem {
		case "poisson1d":
			a = sparse.Poisson1D(*m)
		case "poisson2d":
			a = sparse.Poisson2D(*m)
		case "poisson3d":
			a = sparse.Poisson3D(*m)
		case "toeplitz":
			a = sparse.TridiagToeplitz(*n, 4.2, -1)
		case "random":
			a = sparse.RandomSPD(*n, 8, *seed)
		case "ring":
			a = sparse.RingLaplacian(*n, 0.5)
		case "spectrum":
			a = sparse.PrescribedSpectrum(*n, *kappa)
		default:
			fatalf("unknown problem %q", *problem)
		}
	}
	dim := a.Dim()

	// Right-hand side: from file, or manufactured from a known solution
	// so the error is checkable.
	var b vec.Vector
	var xTrue vec.Vector
	if *rhsFile != "" {
		f, err := os.Open(*rhsFile)
		if err != nil {
			fatalf("open rhs: %v", err)
		}
		b, err = sparse.ReadMatrixMarketVector(f)
		f.Close()
		if err != nil {
			fatalf("parse rhs: %v", err)
		}
		if len(b) != dim {
			fatalf("rhs length %d for matrix order %d", len(b), dim)
		}
	} else {
		xTrue = vec.New(dim)
		vec.Random(xTrue, *seed)
		b = vec.New(dim)
		a.MulVec(b, xTrue)
	}

	// One option set serves every method: each solver consumes what it
	// understands and ignores the rest.
	opts := []solve.Option{
		solve.WithTol(*tol),
		solve.WithMaxIter(*maxIter),
		solve.WithLookahead(*k),
		solve.WithBlockSize(*s),
		solve.WithProcessors(*procs),
	}
	if *restart > 0 {
		opts = append(opts, solve.WithRestart(*restart))
	}
	if pool != nil {
		opts = append(opts, solve.WithPool(pool))
	}
	if *method == "pcg" {
		p, err := precond.ByName(*pc, a)
		if err != nil {
			fatalf("%v", err)
		}
		opts = append(opts, solve.WithPreconditioner(p))
	}

	// A Session prepares (method, operator, options) once; the -repeat
	// loop then runs the amortized serving path.
	sess, err := solve.NewSession(*method, a, opts...)
	if err != nil {
		fatalf("%v", err)
	}

	engineWorkers := 1
	if pool != nil {
		engineWorkers = pool.Workers()
	}
	fmt.Printf("problem=%s n=%d nnz=%d maxrow=%d method=%s engine-workers=%d repeat=%d\n",
		*problem, dim, a.NNZ(), a.MaxRowNonzeros(), *method, engineWorkers, *repeat)

	start := time.Now()
	var res *solve.Result
	for rep := 0; rep < *repeat; rep++ {
		res, err = sess.Solve(b)
		if err != nil && !errors.Is(err, solve.ErrNotConverged) {
			fatalf("%v", err)
		}
	}
	elapsed := time.Since(start)

	rel := res.TrueResidualNorm / vec.Norm2(b)
	if xTrue != nil && res.X != nil {
		errN := vec.New(dim)
		vec.Sub(errN, res.X, xTrue)
		fmt.Printf("converged=%v iterations=%d true-rel-residual=%.3e solution-error=%.3e\n",
			res.Converged, res.Iterations, rel, vec.Norm2(errN))
	} else {
		fmt.Printf("converged=%v iterations=%d true-rel-residual=%.3e\n", res.Converged, res.Iterations, rel)
	}
	fmt.Printf("stats: %s syncs=%d\n", res.Stats, res.Syncs)
	if res.Drift != nil {
		fmt.Printf("vrcg: k=%d reanchors=%d refreshes=%d fallback-dots=%d\n",
			*k, res.Drift.Reanchors, res.Drift.Refreshes, res.Drift.FallbackDots)
	}
	if res.Blocks > 0 {
		fmt.Printf("sstep: s=%d blocks=%d\n", *s, res.Blocks)
	}
	if len(res.Clocks) > 0 {
		fmt.Printf("machine: P=%d per-iter-time=%.2f total-time=%.2f messages=%d words=%d\n",
			*procs, res.PerIterTime(), res.TotalTime(), res.Machine.Messages, res.Machine.Words)
	}
	fmt.Printf("wall: total=%v per-solve=%v\n", elapsed, elapsed/time.Duration(*repeat))
}
