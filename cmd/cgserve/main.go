// Command cgserve is the network solve server: the HTTP JSON API of
// the server package as a daemon. Operators are uploaded once (CSR,
// COO, or MatrixMarket wire formats), then served to any number of
// concurrent clients from warm solve.Session pools with bounded-queue
// backpressure and per-request deadlines. docs/api.md documents every
// endpoint with curl examples.
//
//	cgserve -addr :8080
//	cgserve -addr :8080 -max-concurrent 8 -max-queue 32 -timeout 10s
//	cgserve -addr :8080 -preload poisson2d:64   # boot with a demo operator
//
// The same binary is also both halves of the distributed tier. A
// worker process holds operator shards and runs its piece of each
// distributed solve; a coordinator shards uploads across a fleet of
// workers and exposes them through /v1/cluster/*:
//
//	cgserve -worker-listen 127.0.0.1:9001             # worker (no HTTP)
//	cgserve -worker-listen 127.0.0.1:9002             # worker (no HTTP)
//	cgserve -addr :8080 -fleet 127.0.0.1:9001,127.0.0.1:9002
//
// A quick smoke test against a running server:
//
//	curl localhost:8080/healthz
//	curl localhost:8080/v1/methods
//	curl localhost:8080/v1/cluster/workers   # coordinator mode only
//
// SIGINT/SIGTERM shut the server down gracefully: new requests get
// 503, in-flight solves drain (bounded by -timeout), then the process
// exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"vrcg/cluster"
	"vrcg/server"
	"vrcg/sparse"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxConcurrent := flag.Int("max-concurrent", 0, "solves allowed to run at once (0 = GOMAXPROCS)")
	maxQueue := flag.Int("max-queue", 0, "solve requests allowed to wait beyond -max-concurrent; excess gets 429 (0 = 4x max-concurrent)")
	maxOperators := flag.Int("max-operators", 32, "operator store capacity (LRU eviction past it)")
	maxSessionPools := flag.Int("max-session-pools", 64, "warm-session pool cap across request shapes (oldest dropped past it)")
	maxOrder := flag.Int("max-order", 1<<22, "largest operator order accepted by uploads")
	maxBodyMB := flag.Int("max-body-mb", 256, "largest request body in MiB (operator uploads and wide binary batches dominate)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-solve deadline ceiling (requests can only shorten it)")
	engineWorkers := flag.Int("engine-workers", 1, "worker-pool width for solver kernels; 1 = serial kernels, best for many concurrent clients")
	preload := flag.String("preload", "", "preload a generated operator, e.g. poisson2d:64 (also poisson1d, poisson3d)")
	workerListen := flag.String("worker-listen", "", "run as a cluster worker on this address (no HTTP API); coordinator connects here")
	fleet := flag.String("fleet", "", "run as a cluster coordinator over these comma-separated worker addresses; enables /v1/cluster/*")
	flag.Parse()

	if *workerListen != "" {
		runWorker(*workerListen)
		return
	}

	cfg := server.Config{
		MaxConcurrent:   *maxConcurrent,
		MaxQueue:        *maxQueue,
		MaxOperators:    *maxOperators,
		MaxSessionPools: *maxSessionPools,
		MaxOrder:        *maxOrder,
		MaxBodyBytes:    int64(*maxBodyMB) << 20,
		DefaultTimeout:  *timeout,
	}
	if *engineWorkers > 1 {
		cfg.EnginePool = sparse.NewPool(*engineWorkers)
		// One-shot startup calibration: replace the pool's conservative
		// default parallel cutoffs with crossovers measured on this
		// machine. Dispatch decisions never change numerics, so this is
		// purely a performance knob.
		start := time.Now()
		cfg.EnginePool.Calibrate()
		log.Printf("cgserve: calibrated %d-worker engine pool in %v",
			*engineWorkers, time.Since(start).Round(time.Millisecond))
	}
	var coord *cluster.Coordinator
	if *fleet != "" {
		var err error
		coord, err = dialFleet(*fleet)
		if err != nil {
			log.Fatalf("cgserve: -fleet: %v", err)
		}
		defer coord.Close()
		cfg.Cluster = coord
	}
	srv := server.New(cfg)

	if *preload != "" {
		id, n, err := preloadOperator(srv, *preload)
		if err != nil {
			log.Fatalf("cgserve: -preload %q: %v", *preload, err)
		}
		log.Printf("cgserve: preloaded operator %q (n=%d)", id, n)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("cgserve: serving on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("cgserve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("cgserve: shutting down")
	drain, cancel := context.WithTimeout(context.Background(), *timeout+5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(drain); err != nil {
		log.Printf("cgserve: http shutdown: %v", err)
	}
	if err := srv.Shutdown(drain); err != nil {
		log.Printf("cgserve: %v", err)
	}
}

// runWorker runs the process as a passive cluster worker: it serves
// the coordinator's control connection and peer halo traffic on addr
// until SIGINT/SIGTERM.
func runWorker(addr string) {
	w, err := cluster.NewWorker(cluster.WorkerConfig{Addr: addr, Logf: log.Printf})
	if err != nil {
		log.Fatalf("cgserve: -worker-listen %q: %v", addr, err)
	}
	log.Printf("cgserve: cluster worker on %s", w.Addr())
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	log.Printf("cgserve: worker shutting down")
	w.Close()
}

// dialFleet builds a coordinator over the comma-separated worker
// addresses, retrying each for a while so the fleet can boot in any
// order (workers typically start in parallel with the coordinator).
func dialFleet(spec string) (*cluster.Coordinator, error) {
	coord := cluster.NewCoordinator(cluster.CoordinatorConfig{Logf: log.Printf})
	for _, addr := range strings.Split(spec, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		var (
			id  string
			err error
		)
		deadline := time.Now().Add(15 * time.Second)
		for {
			id, err = coord.AddWorker(addr)
			if err == nil || time.Now().After(deadline) {
				break
			}
			time.Sleep(250 * time.Millisecond)
		}
		if err != nil {
			coord.Close()
			return nil, fmt.Errorf("worker %s: %w", addr, err)
		}
		log.Printf("cgserve: fleet worker %s at %s", id, addr)
	}
	if len(coord.Workers()) == 0 {
		coord.Close()
		return nil, errors.New("no workers in -fleet")
	}
	return coord, nil
}

// preloadOperator parses "<problem>:<m>" and installs the generated
// operator under the problem name, so a fresh server is demo-ready
// without an upload step.
func preloadOperator(srv *server.Server, spec string) (string, int, error) {
	name, sizeStr, ok := strings.Cut(spec, ":")
	if !ok {
		return "", 0, errors.New(`want "<problem>:<size>"`)
	}
	m, err := strconv.Atoi(sizeStr)
	if err != nil || m <= 0 {
		return "", 0, fmt.Errorf("bad size %q", sizeStr)
	}
	var a *sparse.CSR
	switch name {
	case "poisson1d":
		a = sparse.Poisson1D(m)
	case "poisson2d":
		a = sparse.Poisson2D(m)
	case "poisson3d":
		a = sparse.Poisson3D(m)
	default:
		return "", 0, fmt.Errorf("unknown problem %q (want poisson1d|poisson2d|poisson3d)", name)
	}
	if err := srv.Preload(name, a); err != nil {
		return "", 0, err
	}
	return name, a.Dim(), nil
}
