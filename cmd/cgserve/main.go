// Command cgserve is the network solve server: the HTTP JSON API of
// the server package as a daemon. Operators are uploaded once (CSR,
// COO, or MatrixMarket wire formats), then served to any number of
// concurrent clients from warm solve.Session pools with bounded-queue
// backpressure and per-request deadlines. docs/api.md documents every
// endpoint with curl examples.
//
//	cgserve -addr :8080
//	cgserve -addr :8080 -max-concurrent 8 -max-queue 32 -timeout 10s
//	cgserve -addr :8080 -preload poisson2d:64   # boot with a demo operator
//
// A quick smoke test against a running server:
//
//	curl localhost:8080/healthz
//	curl localhost:8080/v1/methods
//
// SIGINT/SIGTERM shut the server down gracefully: new requests get
// 503, in-flight solves drain (bounded by -timeout), then the process
// exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"vrcg/server"
	"vrcg/sparse"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxConcurrent := flag.Int("max-concurrent", 0, "solves allowed to run at once (0 = GOMAXPROCS)")
	maxQueue := flag.Int("max-queue", 0, "solve requests allowed to wait beyond -max-concurrent; excess gets 429 (0 = 4x max-concurrent)")
	maxOperators := flag.Int("max-operators", 32, "operator store capacity (LRU eviction past it)")
	maxSessionPools := flag.Int("max-session-pools", 64, "warm-session pool cap across request shapes (oldest dropped past it)")
	maxOrder := flag.Int("max-order", 1<<22, "largest operator order accepted by uploads")
	timeout := flag.Duration("timeout", 30*time.Second, "per-solve deadline ceiling (requests can only shorten it)")
	engineWorkers := flag.Int("engine-workers", 1, "worker-pool width for solver kernels; 1 = serial kernels, best for many concurrent clients")
	preload := flag.String("preload", "", "preload a generated operator, e.g. poisson2d:64 (also poisson1d, poisson3d)")
	flag.Parse()

	cfg := server.Config{
		MaxConcurrent:   *maxConcurrent,
		MaxQueue:        *maxQueue,
		MaxOperators:    *maxOperators,
		MaxSessionPools: *maxSessionPools,
		MaxOrder:        *maxOrder,
		DefaultTimeout:  *timeout,
	}
	if *engineWorkers > 1 {
		cfg.EnginePool = sparse.NewPool(*engineWorkers)
		// One-shot startup calibration: replace the pool's conservative
		// default parallel cutoffs with crossovers measured on this
		// machine. Dispatch decisions never change numerics, so this is
		// purely a performance knob.
		start := time.Now()
		cfg.EnginePool.Calibrate()
		log.Printf("cgserve: calibrated %d-worker engine pool in %v",
			*engineWorkers, time.Since(start).Round(time.Millisecond))
	}
	srv := server.New(cfg)

	if *preload != "" {
		id, n, err := preloadOperator(srv, *preload)
		if err != nil {
			log.Fatalf("cgserve: -preload %q: %v", *preload, err)
		}
		log.Printf("cgserve: preloaded operator %q (n=%d)", id, n)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("cgserve: serving on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("cgserve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("cgserve: shutting down")
	drain, cancel := context.WithTimeout(context.Background(), *timeout+5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(drain); err != nil {
		log.Printf("cgserve: http shutdown: %v", err)
	}
	if err := srv.Shutdown(drain); err != nil {
		log.Printf("cgserve: %v", err)
	}
}

// preloadOperator parses "<problem>:<m>" and installs the generated
// operator under the problem name, so a fresh server is demo-ready
// without an upload step.
func preloadOperator(srv *server.Server, spec string) (string, int, error) {
	name, sizeStr, ok := strings.Cut(spec, ":")
	if !ok {
		return "", 0, errors.New(`want "<problem>:<size>"`)
	}
	m, err := strconv.Atoi(sizeStr)
	if err != nil || m <= 0 {
		return "", 0, fmt.Errorf("bad size %q", sizeStr)
	}
	var a *sparse.CSR
	switch name {
	case "poisson1d":
		a = sparse.Poisson1D(m)
	case "poisson2d":
		a = sparse.Poisson2D(m)
	case "poisson3d":
		a = sparse.Poisson3D(m)
	default:
		return "", 0, fmt.Errorf("unknown problem %q (want poisson1d|poisson2d|poisson3d)", name)
	}
	if err := srv.Preload(name, a); err != nil {
		return "", 0, err
	}
	return name, a.Dim(), nil
}
