// Command benchjson converts `go test -bench` output on stdin into a
// JSON summary on stdout, so the Makefile's bench target can persist a
// machine-readable perf trajectory (BENCH_engine.json) across PRs.
//
// Usage:
//
//	go test -run '^$' -bench 'SpMV|PCGSolve' -benchmem . | go run ./cmd/benchjson > BENCH_engine.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Extra holds custom metrics (e.g. "depth/iter", "iterations").
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Summary is the emitted document.
type Summary struct {
	GeneratedAt time.Time   `json:"generated_at"`
	GOOS        string      `json:"goos,omitempty"`
	GOARCH      string      `json:"goarch,omitempty"`
	CPU         string      `json:"cpu,omitempty"`
	Pkg         string      `json:"pkg,omitempty"`
	Benchmarks  []Benchmark `json:"benchmarks"`
}

func main() {
	sum := Summary{GeneratedAt: time.Now().UTC()}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			sum.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			sum.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			sum.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			sum.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		if b, ok := parseLine(line); ok {
			sum.Benchmarks = append(sum.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: encode: %v\n", err)
		os.Exit(1)
	}
}

// parseLine parses one result line of the form
//
//	BenchmarkName-8   123   456.7 ns/op   89.0 MB/s   0 B/op   0 allocs/op   1.5 custom/metric
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the -GOMAXPROCS suffix when it is numeric.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters}
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "MB/s":
			b.MBPerS = v
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		default:
			if b.Extra == nil {
				b.Extra = make(map[string]float64)
			}
			b.Extra[unit] = v
		}
	}
	return b, true
}
