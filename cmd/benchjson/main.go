// Command benchjson converts `go test -bench` output on stdin into a
// JSON summary on stdout, so the Makefile's bench target can persist a
// machine-readable perf trajectory (BENCH_engine.json) across PRs.
//
// Usage:
//
//	go test -run '^$' -bench 'SpMV|PCGSolve' -benchmem . | go run ./cmd/benchjson > BENCH_engine.json
//
// With -prev FILE, the fresh results are additionally diffed against a
// previously committed summary and a per-benchmark delta table (ns/op,
// MB/s, with regressions flagged) is printed to stderr — so `make
// bench` shows at a glance what moved before the JSON is overwritten.
//
// With -o FILE, the summary is written to FILE atomically (temp file in
// the same directory + rename) instead of stdout, so an interrupted run
// can never leave a truncated summary or leak a half-written temp file
// into the repository.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Extra holds custom metrics (e.g. "depth/iter", "iterations").
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Summary is the emitted document.
type Summary struct {
	GeneratedAt time.Time   `json:"generated_at"`
	GOOS        string      `json:"goos,omitempty"`
	GOARCH      string      `json:"goarch,omitempty"`
	CPU         string      `json:"cpu,omitempty"`
	Pkg         string      `json:"pkg,omitempty"`
	Benchmarks  []Benchmark `json:"benchmarks"`
}

func main() {
	prevPath := flag.String("prev", "", "committed benchmark JSON to diff the fresh results against (delta table on stderr)")
	outPath := flag.String("o", "", "write the JSON summary to this file atomically (default: stdout)")
	gateAllocs := flag.Bool("gate-allocs", false, "fail (exit 1, previous file left in place) if any benchmark's allocs/op exceeds its value in -prev")
	flag.Parse()

	sum := Summary{GeneratedAt: time.Now().UTC()}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			sum.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			sum.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			sum.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			sum.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		if b, ok := parseLine(line); ok {
			sum.Benchmarks = append(sum.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if *prevPath != "" {
		diffAgainst(*prevPath, sum)
		if *gateAllocs {
			if bad := allocRegressions(*prevPath, sum); len(bad) > 0 {
				fmt.Fprintf(os.Stderr, "benchjson: allocs/op regressions vs %s:\n", *prevPath)
				for _, line := range bad {
					fmt.Fprintf(os.Stderr, "  %s\n", line)
				}
				fmt.Fprintf(os.Stderr, "benchjson: refusing to overwrite %s; fix the allocations or re-baseline deliberately\n", *prevPath)
				os.Exit(1)
			}
		}
	}
	if *outPath != "" {
		if err := writeAtomic(*outPath, sum); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: encode: %v\n", err)
		os.Exit(1)
	}
}

// writeAtomic persists the summary under path via a same-directory temp
// file and rename, removing the temp file on any failure — a crashed or
// interrupted run cannot leave either a truncated summary or a stray
// temp file behind.
func writeAtomic(path string, sum Summary) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp.*")
	if err != nil {
		return fmt.Errorf("create temp: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	enc := json.NewEncoder(tmp)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		tmp.Close()
		return fmt.Errorf("encode: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("close temp: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("rename: %w", err)
	}
	return nil
}

// regressThreshold is the ns/op growth beyond which a row is flagged in
// the delta table. It is deliberately loose: shared CI boxes routinely
// show double-digit noise, and the table informs a human rather than
// failing the build.
const regressThreshold = 0.10

// diffAgainst loads a previously committed summary and prints a
// per-benchmark delta table to stderr. Missing or unreadable previous
// files degrade to a note, never an error: the first run on a fresh
// clone has nothing to diff.
func diffAgainst(path string, fresh Summary) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: no previous results to diff (%v)\n", err)
		return
	}
	var prev Summary
	if err := json.Unmarshal(data, &prev); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: previous file %s unparseable (%v), skipping diff\n", path, err)
		return
	}
	old := make(map[string]Benchmark, len(prev.Benchmarks))
	for _, b := range prev.Benchmarks {
		old[b.Name] = b
	}

	w := tabwriter.NewWriter(os.Stderr, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "\nbenchmark\told ns/op\tnew ns/op\tΔ ns/op\told MB/s\tnew MB/s\t\n")
	var regressions []string
	for _, b := range fresh.Benchmarks {
		p, ok := old[b.Name]
		if !ok {
			fmt.Fprintf(w, "%s\t-\t%.0f\tnew\t-\t%s\t\n", b.Name, b.NsPerOp, mbCell(b.MBPerS))
			continue
		}
		delta := 0.0
		if p.NsPerOp > 0 {
			delta = (b.NsPerOp - p.NsPerOp) / p.NsPerOp
		}
		mark := ""
		if delta > regressThreshold {
			mark = "  <-- regression"
			regressions = append(regressions, b.Name)
		}
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%+.1f%%%s\t%s\t%s\t\n",
			b.Name, p.NsPerOp, b.NsPerOp, 100*delta, mark, mbCell(p.MBPerS), mbCell(b.MBPerS))
		delete(old, b.Name)
	}
	names := make([]string, 0, len(old))
	for name := range old {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%s\t%.0f\t-\tgone\t%s\t-\t\n", name, old[name].NsPerOp, mbCell(old[name].MBPerS))
	}
	w.Flush()
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchjson: %d benchmark(s) slower than %s by >%.0f%%: %s\n",
			len(regressions), path, 100*regressThreshold, strings.Join(regressions, ", "))
	} else {
		fmt.Fprintf(os.Stderr, "\nbenchjson: no regressions beyond %.0f%% vs %s\n", 100*regressThreshold, path)
	}
}

// allocRegressions compares fresh allocs/op against the committed
// summary: any benchmark allocating more than its committed value is a
// hard failure (unlike the informational ns/op table, allocation counts
// are deterministic, so the gate has no noise to tolerate). Benchmarks
// absent from the committed file are new and pass.
func allocRegressions(path string, fresh Summary) []string {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil // first run: nothing committed to gate against
	}
	var prev Summary
	if err := json.Unmarshal(data, &prev); err != nil {
		return nil
	}
	old := make(map[string]Benchmark, len(prev.Benchmarks))
	for _, b := range prev.Benchmarks {
		old[b.Name] = b
	}
	var bad []string
	for _, b := range fresh.Benchmarks {
		if p, ok := old[b.Name]; ok && b.AllocsPerOp > p.AllocsPerOp {
			bad = append(bad, fmt.Sprintf("%s: %d allocs/op, committed %d", b.Name, b.AllocsPerOp, p.AllocsPerOp))
		}
	}
	return bad
}

func mbCell(v float64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f", v)
}

// parseLine parses one result line of the form
//
//	BenchmarkName-8   123   456.7 ns/op   89.0 MB/s   0 B/op   0 allocs/op   1.5 custom/metric
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the -GOMAXPROCS suffix when it is numeric.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters}
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "MB/s":
			b.MBPerS = v
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		default:
			if b.Extra == nil {
				b.Extra = make(map[string]float64)
			}
			b.Extra[unit] = v
		}
	}
	return b, true
}
