// Command figure1 renders the paper's Figure 1 ("Principal Data
// Movement in New CG Algorithm") and, optionally, the measured pipelined
// schedule in the dependency-depth model.
//
// Usage:
//
//	figure1 -k 4
//	figure1 -k 16 -schedule -n 65536 -iters 24
package main

import (
	"flag"
	"fmt"

	"vrcg/internal/trace"
)

func main() {
	k := flag.Int("k", 4, "look-ahead parameter")
	schedule := flag.Bool("schedule", false, "also render the measured pipelined schedule")
	n := flag.Int("n", 1<<16, "vector length for the schedule")
	d := flag.Int("d", 5, "matrix row degree for the schedule")
	iters := flag.Int("iters", 24, "iterations to render")
	width := flag.Int("width", 96, "chart width in characters")
	flag.Parse()

	fmt.Print(trace.Figure1(*k))
	if *schedule {
		fmt.Println("\nPipelined schedule (restructured algorithm):")
		fmt.Print(trace.VRCGSchedule(*n, *d, *k, *iters).Render(*width))
		fmt.Println("\nSynchronous schedule (standard CG):")
		fmt.Print(trace.StandardCGSchedule(*n, *d, *iters/3+1).Render(*width))
	}
}
