// Command cgbench regenerates the reproduction experiments E1..E8 (see
// DESIGN.md section 4 and EXPERIMENTS.md): each experiment prints the
// table (or, for E8, the Figure 1 schedule) corresponding to one of the
// paper's claims.
//
// Usage:
//
//	cgbench -exp all          # run every tabular experiment
//	cgbench -exp e1           # one experiment
//	cgbench -exp e8 -k 6      # Figure 1 schedule with look-ahead 6
//	cgbench -exp e3 -csv      # emit CSV instead of an aligned table
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vrcg/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: e1..e8 or 'all'")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	k := flag.Int("k", 4, "look-ahead parameter for the e8 schedule rendering")
	flag.Parse()

	runners := map[string]func() *bench.Table{
		"e1":  bench.E1DepthScaling,
		"e2":  bench.E2Doubling,
		"e3":  bench.E3DegreeSweep,
		"e4":  bench.E4SequentialCost,
		"e5":  bench.E5Exactness,
		"e6":  bench.E6Stability,
		"e7":  bench.E7Successors,
		"e9":  bench.E9Startup,
		"e10": bench.E10WindowForm,
		"a1":  bench.A1ReanchorInterval,
		"a2":  bench.A2StabilizationModes,
		"a3":  bench.A3SpectralScaling,
		"a4":  bench.A4BatchedReductions,
		"a5":  bench.A5PartitionQuality,
		"a6":  bench.A6EngineThroughput,
	}

	emit := func(t *bench.Table) {
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.Format())
		}
	}

	switch id := strings.ToLower(*exp); id {
	case "all":
		for _, t := range bench.All() {
			emit(t)
		}
		fmt.Println(bench.E8Schedule(*k))
	case "ablations":
		for _, t := range bench.Ablations() {
			emit(t)
		}
	case "e8":
		fmt.Println(bench.E8Schedule(*k))
	default:
		run, ok := runners[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "cgbench: unknown experiment %q (want e1..e10, a1..a6, ablations, or all)\n", *exp)
			os.Exit(2)
		}
		emit(run())
	}
}
