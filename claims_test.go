// Claims conformance suite: every claim of Van Rosendale (1983), as
// catalogued in DESIGN.md §1 (C1..C7 and Figure 1), asserted end to end
// against this implementation. Each test names the claim it checks and
// fails with the measured value if the reproduction drifts. The detailed
// per-module behaviour lives in the package test suites; this file is
// the paper-facing index.
package vrcg_test

import (
	"math"
	"testing"

	"vrcg/internal/collective"
	"vrcg/internal/core"
	"vrcg/internal/depth"
	"vrcg/internal/krylov"
	"vrcg/internal/machine"
	"vrcg/internal/parcg"
	"vrcg/internal/trace"
	"vrcg/internal/vec"
	"vrcg/sparse"
)

// C1: "The inner product of two vectors of length N requires time
// c*log(N)" and standard CG is bound by two of them per iteration.
func TestClaimC1InnerProductBound(t *testing.T) {
	// The hand-rolled collective realizes the log-time fan-in: doubling
	// P from 512 to 1024 adds one round, not a factor.
	fanIn := func(p int) float64 {
		m := machine.New(machine.Config{P: p, Alpha: 1, Beta: 0, FlopTime: 0})
		collective.ReduceSum(m, make([]float64, p), 0)
		return m.MaxClock()
	}
	if d := fanIn(1024) - fanIn(512); d > 1.5 {
		t.Fatalf("C1: fan-in not logarithmic: doubling P added %v", d)
	}
	// And standard CG's per-iteration depth grows as 2*log2(N).
	slope := (depth.CGRate(1<<20, 5) - depth.CGRate(1<<10, 5)) / 10
	if math.Abs(slope-2) > 0.3 {
		t.Fatalf("C1: CG depth slope per log2(N) = %.2f, want ~2", slope)
	}
}

// C2 (§3): the one-step recurrence "will approximately double the
// parallel speed of CG iteration".
func TestClaimC2Doubling(t *testing.T) {
	ratio := depth.CGRate(1<<26, 5) / depth.VRCGRate(1<<26, 5, 1)
	if ratio < 1.7 || ratio > 2.1 {
		t.Fatalf("C2: k=1 speedup %.3f, want ~2", ratio)
	}
}

// C3 (§4, equation *): the step scalars are linear combinations of the
// 6k+O(1) base inner products with coefficients polynomial in the
// parameter history.
func TestClaimC3StarEquation(t *testing.T) {
	k := 3
	a := sparse.Poisson2D(4)
	n := a.Dim()
	b := vec.New(n)
	vec.Random(b, 33)

	r := vec.Clone(b)
	p := vec.Clone(r)
	ap := vec.New(n)
	rr := vec.Dot(r, r)
	pows := sparse.PowerApply(a, r, 2*k+1)
	g := core.BaseGram{
		Mu:    make([]float64, 2*k+2),
		Nu:    make([]float64, 2*k+2),
		Omega: make([]float64, 2*k+2),
	}
	for i := 0; i <= 2*k+1; i++ {
		d := vec.Dot(r, pows[i])
		g.Mu[i], g.Nu[i], g.Omega[i] = d, d, d
	}
	cr, cp := core.NewCoeffR(), core.NewCoeffP()
	for it := 0; it < k; it++ {
		a.MulVec(ap, p)
		lambda := rr / vec.Dot(p, ap)
		vec.Axpy(-lambda, ap, r)
		rrNew := vec.Dot(r, r)
		alpha := rrNew / rr
		vec.Xpay(r, alpha, p)
		rr = rrNew
		cr, cp = core.StepCG(cr, cp, lambda, alpha)
	}
	got := g.Contract(cr, cr, 0)
	want := vec.Dot(r, r)
	if math.Abs(got-want) > 1e-8*math.Abs(want) {
		t.Fatalf("C3: (*) contraction %g, direct %g", got, want)
	}
}

// C4 (abstract, §5): "After an initial start up, the new algorithm can
// perform a conjugate gradient iteration in time c*log(log(N))".
func TestClaimC4DoubleLogIteration(t *testing.T) {
	for _, lg := range []int{12, 18, 24} {
		rate := depth.VRCGRate(1<<lg, 5, lg)
		bound := float64(depth.Log2Ceil(6*lg+5)) + 8 // c*log(log N) with c small
		if rate > bound {
			t.Fatalf("C4: N=2^%d rate %.1f above log-log bound %.1f", lg, rate, bound)
		}
	}
	// And the machine realization: reductions leave the critical path.
	a := sparse.TridiagToeplitz(4096, 4.2, -1)
	p := 256
	cfg := machine.Config{P: p, Alpha: 64, Beta: 0.01, FlopTime: 0.001}
	run := func(f func(*machine.Machine, *parcg.DistMatrix, *parcg.Dist) (*parcg.Result, error)) float64 {
		m := machine.New(cfg)
		dm := parcg.NewDistMatrix(a, p)
		bs := vec.New(a.Dim())
		vec.Random(bs, 3)
		res, err := f(m, dm, parcg.Scatter(bs, p))
		if err != nil {
			t.Fatal(err)
		}
		return res.PerIterTime()
	}
	opt := parcg.Options{Tol: 1e-6, MaxIter: 120}
	cg := run(func(m *machine.Machine, dm *parcg.DistMatrix, b *parcg.Dist) (*parcg.Result, error) {
		return parcg.CG(m, dm, b, opt)
	})
	vr := run(func(m *machine.Machine, dm *parcg.DistMatrix, b *parcg.Dist) (*parcg.Result, error) {
		return parcg.VRCG(m, dm, b, parcg.VROptions{Options: opt, K: 8})
	})
	if vr > 0.25*cg {
		t.Fatalf("C4 machine: VRCG %.1f not well below CG %.1f", vr, cg)
	}
}

// C5 (§5): one matrix-vector product per iteration; O(1) direct inner
// products; high powers of A never computed explicitly.
func TestClaimC5OperationEconomy(t *testing.T) {
	a := sparse.Poisson2D(12)
	b := vec.New(a.Dim())
	vec.Random(b, 5)
	k := 3
	res, err := core.Solve(a, b, core.Options{K: k, Tol: 1e-8, WindowOnlyReanchor: true})
	if err != nil {
		t.Fatal(err)
	}
	perIterMV := float64(res.Stats.MatVecs-(k+3)-res.Refreshes*(2*k+1)) / float64(res.Iterations) // minus startup (r0 + k+1 powers) and exit check
	if perIterMV > 1.01 {
		t.Fatalf("C5: %.3f matvecs per iteration, want 1", perIterMV)
	}
	// 3 direct tops + (6k+6)/interval re-anchor dots; with the adaptive
	// default interval of 2 at k=3 that is ~15 — O(1) regardless of N
	// (the paper claims 2 via recurrence details it never published).
	perIterDots := float64(res.Stats.InnerProducts) / float64(res.Iterations)
	if perIterDots > 18 {
		t.Fatalf("C5: %.1f direct inner products per iteration", perIterDots)
	}
}

// C6 (§6): "this algorithm requires parallel time
// max(log(d), log(log(N)))".
func TestClaimC6MaxBound(t *testing.T) {
	n := 1 << 20
	k := 20
	// Flat in d below the crossover...
	if a, b := depth.VRCGRate(n, 3, k), depth.VRCGRate(n, 27, k); a != b {
		t.Fatalf("C6: rate depends on d below crossover: %v vs %v", a, b)
	}
	// ...slope ~1 per log2(d) above it.
	slope := (depth.VRCGRate(n, 1<<14, k) - depth.VRCGRate(n, 1<<10, k)) / 4
	if math.Abs(slope-1) > 0.3 {
		t.Fatalf("C6: degree slope %.2f, want ~1", slope)
	}
}

// C7 (§6): "The sequential complexity of this algorithm is essentially
// the same as that of the usual CG algorithm."
func TestClaimC7SequentialEquivalence(t *testing.T) {
	a := sparse.Poisson2D(16)
	b := vec.New(a.Dim())
	vec.Random(b, 7)
	cg, err := krylov.CG(a, b, krylov.Options{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	vr, err := core.Solve(a, b, core.Options{K: 2, Tol: 1e-8, WindowOnlyReanchor: true})
	if err != nil {
		t.Fatal(err)
	}
	if !vr.Converged {
		t.Fatal("C7: VRCG did not converge")
	}
	// Same iterations (same mathematics)...
	if diff := vr.Iterations - cg.Iterations; diff < -2 || diff > 2 {
		t.Fatalf("C7: iteration counts %d vs %d", vr.Iterations, cg.Iterations)
	}
	// ...and the same leading-order matvec cost (the flop overhead is a
	// bounded constant factor from family maintenance).
	if ratio := float64(vr.Stats.Flops) / float64(cg.Stats.Flops); ratio > 4 {
		t.Fatalf("C7: flop ratio %.2f too large", ratio)
	}
}

// Figure 1: the pipelined data movement — reductions from multiple
// iterations concurrently in flight.
func TestClaimFigure1Pipeline(t *testing.T) {
	tr := trace.VRCGSchedule(1<<16, 5, 16, 30)
	open := 0
	var reduces []trace.Event
	for _, e := range tr.Events {
		if e.Unit == trace.UnitReduce {
			reduces = append(reduces, e)
		}
	}
	for _, e := range reduces {
		cnt := 0
		for _, f := range reduces {
			if f.Start < e.End && e.Start < f.End {
				cnt++
			}
		}
		if cnt > open {
			open = cnt
		}
	}
	if open < 2 {
		t.Fatalf("Figure 1: only %d reductions concurrently in flight", open)
	}
}
