# Build / test / benchmark entry points for the vrcg repository.
#
# `make bench` runs the execution-engine microbenchmarks (SpMV, dot,
# fused CG update, PCG solve), the public-surface serving benchmarks
# (registry dispatch overhead, Session reuse vs fresh solver, Batch
# throughput at 1/8/64 right-hand sides), and the HTTP serving-layer
# benchmarks (warm-pool /v1/solve, /v1/solve/batch fan-out) with
# -benchmem, and the distributed-tier benchmarks (sharded vs
# single-process solves, per-iteration reduction wait by method),
# writing the parsed results to BENCH_engine.json, BENCH_solve.json,
# BENCH_sequence.json (cold vs warm-started sequence steps),
# BENCH_server.json, and BENCH_cluster.json so the perf trajectory is
# comparable across PRs. BENCH_* artifacts are regenerated, not
# hand-edited.
#
# `make serve` boots cmd/cgserve locally with a demo operator;
# `make docs-check` is the doc-freshness gate CI runs.

GO         ?= go
BINDIR     ?= bin
BENCHPAT   ?= BenchmarkSpMV|BenchmarkPCGSolve|BenchmarkDotSerial|BenchmarkDotParallel|BenchmarkDotPooled|BenchmarkFusedCGUpdate|BenchmarkMatVecCSR|BenchmarkCGPlainVsFused
BENCHOUT   ?= BENCH_engine.json
SOLVEPAT   ?= BenchmarkSolveDispatch|BenchmarkSessionReuse|BenchmarkSessionPerMethod|BenchmarkFreshSolvePerCall|BenchmarkBatch|BenchmarkParcgFamily
SOLVEOUT   ?= BENCH_solve.json
SEQPAT     ?= BenchmarkSequence
SEQOUT     ?= BENCH_sequence.json
SERVERPAT  ?= BenchmarkServeSolveWarm|BenchmarkServeBatch|BenchmarkServeMetrics
SERVEROUT  ?= BENCH_server.json
CLUSTERPAT ?= BenchmarkClusterSolve|BenchmarkClusterReduction
CLUSTEROUT ?= BENCH_cluster.json
SERVEADDR  ?= :8080

.PHONY: all build test vet fmt check lint bench bench-raw bins serve docs-check clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Full gate, mirrored by .github/workflows/ci.yml: formatting, vet,
# build, the test suite under the race detector, and a one-iteration
# benchmark smoke run so bench code cannot rot.
check:
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

fmt:
	gofmt -l -w .

# Static analysis + vulnerability scan, mirrored by the staticcheck and
# govulncheck CI jobs. Tools are installed on demand (network required
# the first time) and invoked by their install path, so lint works even
# when GOBIN is not on PATH; offline environments fall back to `go vet`.
lint:
	@bin="$$($(GO) env GOBIN)"; [ -n "$$bin" ] || bin="$$($(GO) env GOPATH)/bin"; \
	sc="$$(command -v staticcheck || true)"; \
	if [ -z "$$sc" ]; then \
		$(GO) install honnef.co/go/tools/cmd/staticcheck@latest >/dev/null 2>&1 && sc="$$bin/staticcheck"; \
	fi; \
	if [ -n "$$sc" ] && [ -x "$$sc" ]; then "$$sc" ./...; \
	else echo "lint: staticcheck unavailable (offline?); running go vet only"; $(GO) vet ./...; fi
	@bin="$$($(GO) env GOBIN)"; [ -n "$$bin" ] || bin="$$($(GO) env GOPATH)/bin"; \
	gv="$$(command -v govulncheck || true)"; \
	if [ -z "$$gv" ]; then \
		$(GO) install golang.org/x/vuln/cmd/govulncheck@latest >/dev/null 2>&1 && gv="$$bin/govulncheck"; \
	fi; \
	if [ -n "$$gv" ] && [ -x "$$gv" ]; then "$$gv" ./...; \
	else echo "lint: govulncheck unavailable (offline?); skipped"; fi

# Raw benchmark text (inspect interactively).
bench-raw:
	$(GO) test -run '^$$' -bench '$(BENCHPAT)|$(SOLVEPAT)|$(SEQPAT)' -benchmem .
	$(GO) test -run '^$$' -bench '$(SERVERPAT)' -benchmem ./server
	$(GO) test -run '^$$' -bench '$(CLUSTERPAT)' -benchmem ./cluster

# Command binaries build into the git-ignored $(BINDIR), never the
# package or repo root, so a stray build can no longer commit a binary.
bins:
	$(GO) build -o $(BINDIR)/ ./cmd/...

# JSON summaries for the perf trajectory across PRs. Fresh results are
# diffed against the committed file (benchjson -prev prints the delta
# table to stderr) before replacing it; benchjson -o writes the summary
# atomically (same-dir temp + rename), so no half-written BENCH_*.json
# or stray temp file can survive an interrupted run. The solve surface
# additionally runs under -gate-allocs: any benchmark allocating more
# per op than its committed BENCH_solve.json value fails the target
# (allocation counts are deterministic, so the gate tolerates no noise)
# and leaves the committed file untouched.
bench: bins
	$(GO) test -run '^$$' -bench '$(BENCHPAT)' -benchmem . | tee /dev/stderr | $(BINDIR)/benchjson -prev $(BENCHOUT) -o $(BENCHOUT)
	@echo "wrote $(BENCHOUT)"
	$(GO) test -run '^$$' -bench '$(SOLVEPAT)' -benchmem . | tee /dev/stderr | $(BINDIR)/benchjson -prev $(SOLVEOUT) -gate-allocs -o $(SOLVEOUT)
	@echo "wrote $(SOLVEOUT)"
	$(GO) test -run '^$$' -bench '$(SEQPAT)' -benchmem . | tee /dev/stderr | $(BINDIR)/benchjson -prev $(SEQOUT) -o $(SEQOUT)
	@echo "wrote $(SEQOUT)"
	$(GO) test -run '^$$' -bench '$(SERVERPAT)' -benchmem ./server | tee /dev/stderr | $(BINDIR)/benchjson -prev $(SERVEROUT) -o $(SERVEROUT)
	@echo "wrote $(SERVEROUT)"
	$(GO) test -run '^$$' -bench '$(CLUSTERPAT)' -benchtime=1x -benchmem ./cluster | tee /dev/stderr | $(BINDIR)/benchjson -prev $(CLUSTEROUT) -o $(CLUSTEROUT)
	@echo "wrote $(CLUSTEROUT)"

# Boot the solve server locally with a demo operator resident.
serve:
	$(GO) run ./cmd/cgserve -addr $(SERVEADDR) -preload poisson2d:64

# Doc-freshness gate, mirrored by the docs CI job: formatting, vet,
# godoc renderability of every public package, and the cross-links the
# documentation layer promises (ARCHITECTURE.md and docs/api.md must
# exist and be linked from README.md).
docs-check:
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	$(GO) vet ./...
	@for pkg in . ./solve ./sparse ./precond ./server ./cluster ./cluster/wire; do \
		$(GO) doc $$pkg >/dev/null || exit 1; done
	@test -f ARCHITECTURE.md || { echo "ARCHITECTURE.md missing"; exit 1; }
	@test -f docs/api.md || { echo "docs/api.md missing"; exit 1; }
	@grep -q 'ARCHITECTURE.md' README.md || { echo "README.md does not link ARCHITECTURE.md"; exit 1; }
	@grep -q 'docs/api.md' README.md || { echo "README.md does not link docs/api.md"; exit 1; }
	@grep -q 'ARCHITECTURE.md' doc.go || { echo "doc.go does not reference ARCHITECTURE.md"; exit 1; }
	@grep -q '/v1/sequence' docs/api.md || { echo "docs/api.md does not document /v1/sequence"; exit 1; }
	@echo "docs-check: ok"

clean:
	rm -f $(BENCHOUT) $(SOLVEOUT) $(SEQOUT) $(SERVEROUT) $(CLUSTEROUT)
	rm -rf $(BINDIR)
