# Build / test / benchmark entry points for the vrcg repository.
#
# `make bench` runs the execution-engine microbenchmarks (SpMV, dot,
# fused CG update, PCG solve) with -benchmem and writes the parsed
# results to BENCH_engine.json so the perf trajectory is comparable
# across PRs. BENCH_* artifacts are regenerated, not hand-edited.

GO       ?= go
BENCHPAT ?= BenchmarkSpMV|BenchmarkPCGSolve|BenchmarkDotSerial|BenchmarkDotParallel|BenchmarkDotPooled|BenchmarkFusedCGUpdate|BenchmarkMatVecCSR|BenchmarkCGPlainVsFused
BENCHOUT ?= BENCH_engine.json

.PHONY: all build test vet fmt check bench bench-raw clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Full gate, mirrored by .github/workflows/ci.yml: vet, build, and the
# test suite under the race detector.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

fmt:
	gofmt -l -w .

# Raw benchmark text (inspect interactively).
bench-raw:
	$(GO) test -run '^$$' -bench '$(BENCHPAT)' -benchmem .

# JSON summary for the perf trajectory across PRs.
bench:
	$(GO) test -run '^$$' -bench '$(BENCHPAT)' -benchmem . | tee /dev/stderr | $(GO) run ./cmd/benchjson > $(BENCHOUT)
	@echo "wrote $(BENCHOUT)"

clean:
	rm -f $(BENCHOUT)
