// Package vrcg is a reproduction of John Van Rosendale, "Minimizing
// Inner Product Data Dependencies in Conjugate Gradient Iteration"
// (ICASE / NASA CR-172178, ICPP 1983) — the algebraic restructuring of
// CG that hides the c*log(N) inner-product summation fan-ins behind a
// k-iteration-deep pipeline, reducing per-iteration parallel time to
// c*log(log N), and the direct ancestor of today's pipelined and s-step
// conjugate gradient methods.
//
// # Public API: the solve, sparse, precond, and server packages
//
// Four packages form the importable surface, all typed on plain
// []float64 so nothing internal leaks through the boundary.
// ARCHITECTURE.md draws how they stack.
//
// Package sparse is the data plane: CSR/COO/DIA and matrix-free stencil
// operators, MatrixMarket I/O, Poisson and variable-coefficient
// generators, RCM reordering, spectral estimates, and the worker-pool
// handle (sparse.NewPool) the parallel kernels run on. Every matrix
// type satisfies solve.Operator, and any type with Dim/MulVec is an
// operator too.
//
// Package solve is the control plane: one Solver interface, one
// canonical Result, functional options, and a method registry covering
// every CG variant in the repository —
//
//	s, err := solve.New("vrcg") // or cg, pcg, pipecg, sstep, parcg, ...
//	res, err := s.Solve(a, b,
//	        solve.WithTol(1e-10),
//	        solve.WithLookahead(4),
//	        solve.WithPool(sparse.DefaultPool))
//	fmt.Println(res.Iterations, res.Syncs, res.TrueResidualNorm)
//
// For repeated solves against one operator — the serving regime — a
// Session prepares the (method, operator, options) triple once and
// reuses its workspace and Result, so a warm Session.Solve performs
// zero heap allocations for the workspace-backed methods; Batch (or
// Session.SolveMany) fans many right-hand sides out across forked
// sessions round-robin and aggregates the results in input order:
//
//	a, err := sparse.ReadMatrixMarket(f)
//	sess, err := solve.NewSession("cg", a, solve.WithTol(1e-10))
//	res, err := sess.Solve(b)            // zero-alloc steady state
//	results, err := solve.Batch(sess, B) // B is [][]float64
//
// For concurrent serving, solve.SessionPool keeps warm sessions on a
// free list with per-request context injection, and solve.Params is
// the JSON wire form of the option set. Package server builds the HTTP
// serving layer on exactly those pieces: a ref-counted LRU operator
// store fed by the sparse wire codec (sparse.WireMatrix), per-request-
// shape session pools, bounded-queue backpressure, and a metrics
// endpoint reporting the session-pool hit rate — cmd/cgserve is the
// daemon, docs/api.md the endpoint reference. Package cluster extends
// the same surface across worker processes: operators row-sharded over
// a fleet, distributed CG iterations with batched halo exchange and
// coordinator-combined inner products, exposed through the server's
// /v1/cluster endpoints (cgserve -fleet / -worker-listen).
//
// Result carries the paper's comparison currency directly: operation
// counts (Stats), estimated blocking synchronization points (Syncs),
// recurrence drift diagnostics (Drift, for "vrcg"), measured
// per-iteration phase latencies (Phases, for the real-parallel "parcg*"
// methods), and — in the opt-in machine-replay mode (WithProcessors) —
// the simulated parallel-time trajectory (Clocks). Non-convergence is
// one sentinel (solve.ErrNotConverged)
// carrying a usable partial Result; breakdowns wrap solve.ErrIndefinite
// / solve.ErrBreakdown; bad parameters wrap solve.ErrBadOption — all
// errors.Is-compatible. WithContext cancels a solve mid-iteration;
// WithMonitor observes it. See the runnable examples in
// solve/example_test.go, one per method.
//
// Solvers built by solve.New own reusable workspaces: repeated solves
// against same-order operators allocate nothing in steady state for the
// workspace-backed methods. cmd/, examples/, and the experiment harness
// all go through this registry — adding a method to the registry makes
// it appear in the cgsolve CLI without touching the CLI.
//
// # Architecture: one iteration engine, many kernels
//
// The paper's point is that CG variants differ only in how they
// schedule the same few kernel steps — SpMV, inner products, vector
// updates — to hide inner-product data dependencies. The implementation
// makes that structural fact the architecture. Every shared-memory
// method is a Kernel implementing one four-hook contract against a
// shared driver (internal/engine):
//
//	          solve registry (13 methods)
//	                   │ one generic adapter (solveInto fast path)
//	     ┌─────────────┴─────────────┐
//	     │ engine.Solve — the driver │   owns: defaults, dim checks,
//	     │ Init / Step / Residual /  │   convergence, callbacks,
//	     │ Finish over a Workspace   │   history, classification
//	     └─────────────┬─────────────┘
//	┌────────┬─────────┼──────────┬──────────┐
//	│ krylov │ krylov  │ pipecg   │ core     │ sstep
//	│ cg,pcg │ cr, sd, │ pipecg,  │ vrcg     │ sstep
//	│ cgfused│ minres  │ gropp    │ (§5)     │ (C–G)
//	└────────┴─────────┴──────────┴──────────┘
//	                   │ engine.Workspace: size-keyed vector arena
//	     ┌─────────────┴─────────────┐
//	     │ vec.Pool + sparse SpMV    │   persistent workers,
//	     │ (pooled kernel dispatch)  │   zero-alloc dispatch
//	     └───────────────────────────┘
//
// The kernel owns only the method's numerics; the driver owns
// everything the method silos used to duplicate. Kernels draw vectors
// from the workspace arena and cache structured state (vrcg's Krylov
// families, sstep's Gram and coefficient buffers) across solves, which
// is what makes every shared-memory method — cg, cgfused, pcg, cr, sd,
// minres, vrcg, pipecg, gropp, sstep, and the real-parallel parcg,
// parcg-cg, parcg-pipe — workspace-backed: a warm Session.Solve on any
// of them performs zero heap allocations (the parcg kernels' background
// reduction goroutines are persistent, created once per session).
//
// Session/Batch behavior by method family:
//
//	method family        warm Session.Solve   Batch fan-out
//	engine-backed (13)   0 allocs/op          forked per-worker workspaces
//
// The execution layers underneath:
//
//   - vec.Pool: a persistent worker pool for the vector kernels (dot,
//     axpy, xpay, fused CG update, batched dots). Workers are long-lived
//     goroutines woken over per-worker channels; jobs are published as
//     opcode + operand descriptors into pool-owned fields, and
//     per-worker partial-sum slabs are reused, so a kernel dispatch
//     performs zero heap allocations in steady state.
//   - sparse.CSR.MulVecPool: parallel SpMV over an nnz-balanced row
//     partition (equal work per chunk, not equal rows) precomputed at
//     matrix construction and cached on the CSR; sparse.DIA and
//     sparse.Stencil parallelize by equal row splits through the same
//     pool. COO assembly itself is a sort-based two-pass build, not a
//     hash merge.
//
// See internal/core/README.md for the engine architecture and the
// pooled-vs-serial decision guide.
//
// # Implementation layout
//
// The implementation lives under internal/ (plus the public precond):
//
//   - internal/engine: the shared iteration driver, Kernel contract,
//     and workspace arena every shared-memory method runs on
//   - internal/core: the paper's algorithm (look-ahead CG, "VRCG")
//   - internal/krylov: classic CG/PCG/CR/SD/MINRES kernels
//   - precond (public): Jacobi, SSOR, IC0, and polynomial
//     preconditioners, usable directly with solve.WithPreconditioner
//   - internal/sstep, internal/pipecg: the published successor methods
//   - sparse (public), internal/vec: sparse operators and vector kernels
//   - internal/depth: the dependency-depth cost model of the paper
//   - internal/parcg: the paper's schedules as real-parallel engine
//     kernels, reductions overlapped on background goroutines
//   - internal/machine, internal/collective: a simulated distributed
//     machine with hand-rolled collectives, now the parcg methods'
//     opt-in replay monitor (WithProcessors)
//   - internal/trace: Figure 1 schedule rendering
//   - internal/bench: the experiment harness (E1..E10, A1..A6)
//
// Executables: cmd/cgserve (the HTTP solve server; docs/api.md),
// cmd/cgbench (experiments), cmd/cgsolve (solver CLI over the solve
// registry; -matrix loads MatrixMarket systems and -workers/-repeat
// exercise the engine), cmd/figure1 (schedule diagrams), cmd/benchjson
// (bench output → BENCH_engine.json, BENCH_solve.json, and
// BENCH_server.json). Runnable examples live in examples/ (quickstart
// is the public-surface walkthrough). See README.md for the
// external-consumer quickstart and ARCHITECTURE.md for the system
// inventory: the full layer diagram, the Kernel contract, and the
// home of every registry method.
package vrcg
