// Package vrcg is a reproduction of John Van Rosendale, "Minimizing
// Inner Product Data Dependencies in Conjugate Gradient Iteration"
// (ICASE / NASA CR-172178, ICPP 1983) — the algebraic restructuring of
// CG that hides the c*log(N) inner-product summation fan-ins behind a
// k-iteration-deep pipeline, reducing per-iteration parallel time to
// c*log(log N), and the direct ancestor of today's pipelined and s-step
// conjugate gradient methods.
//
// # Public API: the solve and sparse packages
//
// Two packages form the importable surface, both typed on plain
// []float64 so nothing internal leaks through the boundary.
//
// Package sparse is the data plane: CSR/COO/DIA and matrix-free stencil
// operators, MatrixMarket I/O, Poisson and variable-coefficient
// generators, RCM reordering, spectral estimates, and the worker-pool
// handle (sparse.NewPool) the parallel kernels run on. Every matrix
// type satisfies solve.Operator, and any type with Dim/MulVec is an
// operator too.
//
// Package solve is the control plane: one Solver interface, one
// canonical Result, functional options, and a method registry covering
// every CG variant in the repository —
//
//	s, err := solve.New("vrcg") // or cg, pcg, pipecg, sstep, parcg, ...
//	res, err := s.Solve(a, b,
//	        solve.WithTol(1e-10),
//	        solve.WithLookahead(4),
//	        solve.WithPool(sparse.DefaultPool))
//	fmt.Println(res.Iterations, res.Syncs, res.TrueResidualNorm)
//
// For repeated solves against one operator — the serving regime — a
// Session prepares the (method, operator, options) triple once and
// reuses its workspace and Result, so a warm Session.Solve performs
// zero heap allocations for the workspace-backed methods; Batch (or
// Session.SolveMany) fans many right-hand sides out across forked
// sessions round-robin and aggregates the results in input order:
//
//	a, err := sparse.ReadMatrixMarket(f)
//	sess, err := solve.NewSession("cg", a, solve.WithTol(1e-10))
//	res, err := sess.Solve(b)            // zero-alloc steady state
//	results, err := solve.Batch(sess, B) // B is [][]float64
//
// Result carries the paper's comparison currency directly: operation
// counts (Stats), estimated blocking synchronization points (Syncs),
// recurrence drift diagnostics (Drift, for "vrcg"), and the simulated
// parallel-time trajectory (Clocks, for the distributed "parcg*"
// methods). Non-convergence is one sentinel (solve.ErrNotConverged)
// carrying a usable partial Result; breakdowns wrap solve.ErrIndefinite
// / solve.ErrBreakdown; bad parameters wrap solve.ErrBadOption — all
// errors.Is-compatible. WithContext cancels a solve mid-iteration;
// WithMonitor observes it. See the runnable examples in
// solve/example_test.go, one per method.
//
// Solvers built by solve.New own reusable workspaces: repeated solves
// against same-order operators allocate nothing in steady state for the
// workspace-backed methods. cmd/, examples/, and the experiment harness
// all go through this registry — adding a method to the registry makes
// it appear in the cgsolve CLI without touching the CLI.
//
// # Implementation layout
//
// The implementation lives under internal/:
//
//   - internal/core: the paper's algorithm (look-ahead CG, "VRCG")
//   - internal/krylov, internal/precond: classic CG/PCG/CR baselines
//   - internal/sstep, internal/pipecg: the published successor methods
//   - sparse (public), internal/vec: sparse operators and vector
//     kernels (internal/mat remains as a deprecated forwarding shim for
//     the promoted sparse package)
//   - internal/depth: the dependency-depth cost model of the paper
//   - internal/machine, internal/collective, internal/parcg: a simulated
//     distributed machine with hand-rolled collectives, and the
//     algorithms as distributed programs on it
//   - internal/trace: Figure 1 schedule rendering
//   - internal/bench: the experiment harness (E1..E10, A1..A6)
//
// # Execution engine
//
// The wall-clock hot path of every solver runs on a shared execution
// engine with three layers, mirroring in real silicon the overhead
// minimization the paper performs in its machine model:
//
//   - vec.Pool: a persistent worker pool for the vector kernels (dot,
//     axpy, xpay, fused CG update, batched dots). Workers are long-lived
//     goroutines woken over per-worker channels; jobs are published as
//     opcode + operand descriptors into pool-owned fields, and
//     per-worker partial-sum slabs are reused, so a kernel dispatch
//     performs zero heap allocations in steady state.
//   - sparse.CSR.MulVecPool: parallel SpMV over an nnz-balanced row
//     partition (equal work per chunk, not equal rows) precomputed at
//     matrix construction and cached on the CSR; sparse.DIA and
//     sparse.Stencil parallelize by equal row splits through the same
//     pool. COO assembly itself is a sort-based two-pass build, not a
//     hash merge.
//   - solver workspaces: krylov.Workspace (CG/PCG) and pipecg.Workspace
//     preallocate every solve-lifetime vector, so repeated solves
//     against same-order operators allocate nothing in steady state;
//     the solve registry holds these workspaces inside its Solvers, and
//     core.Options.Pool and sstep.Options.Pool route the remaining
//     solvers through the same pooled kernels.
//
// See internal/core/README.md for the engine architecture and the
// pooled-vs-serial decision guide.
//
// Executables: cmd/cgbench (experiments), cmd/cgsolve (solver CLI over
// the solve registry; -matrix loads MatrixMarket systems and
// -workers/-repeat exercise the engine), cmd/figure1 (schedule
// diagrams), cmd/benchjson (bench output → BENCH_engine.json and
// BENCH_solve.json). Runnable examples live in examples/ (quickstart is
// the public-surface walkthrough). See README.md for the
// external-consumer quickstart, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results.
package vrcg
