// Package vrcg is a reproduction of John Van Rosendale, "Minimizing
// Inner Product Data Dependencies in Conjugate Gradient Iteration"
// (ICASE / NASA CR-172178, ICPP 1983) — the algebraic restructuring of
// CG that hides the c*log(N) inner-product summation fan-ins behind a
// k-iteration-deep pipeline, reducing per-iteration parallel time to
// c*log(log N), and the direct ancestor of today's pipelined and s-step
// conjugate gradient methods.
//
// The implementation lives under internal/:
//
//   - internal/core: the paper's algorithm (look-ahead CG, "VRCG")
//   - internal/krylov, internal/precond: classic CG/PCG/CR baselines
//   - internal/sstep, internal/pipecg: the published successor methods
//   - internal/mat, internal/vec: sparse operators and vector kernels
//   - internal/depth: the dependency-depth cost model of the paper
//   - internal/machine, internal/collective, internal/parcg: a simulated
//     distributed machine with hand-rolled collectives, and the
//     algorithms as distributed programs on it
//   - internal/trace: Figure 1 schedule rendering
//   - internal/bench: the experiment harness (E1..E8)
//
// Executables: cmd/cgbench (experiments), cmd/cgsolve (solver CLI),
// cmd/figure1 (schedule diagrams). Runnable examples live in examples/.
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results.
package vrcg
